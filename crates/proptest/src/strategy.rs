//! Strategies: composable deterministic samplers.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// pure function of the RNG state.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a follow-up strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuples {
    ($(($($name:ident : $idx:tt),+ );)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuples! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Accepted size arguments of [`vec`]: an exact length or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `prop::collection::vec`: a vector of `element` samples with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::bool::ANY`.
pub mod bool_any {
    use super::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The canonical instance, mirroring `proptest::bool::ANY`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `prop::sample::Index`: an index drawn independently of the collection
/// it will select from; `index(len)` maps it uniformly into `0..len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(pub(crate) u64);

impl Index {
    /// Map into `0..len` (`len > 0`).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}
