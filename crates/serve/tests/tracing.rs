//! End-to-end distributed tracing through the daemon: traced requests
//! retire in request order echoing their trace context, and the
//! always-on flight recorder links every hop's span — request → queue
//! wait → worker → DP — under the inbound context.
//!
//! Everything lives in one test function: the flight ring is a process
//! global, and a single drain at the end partitions events by trace id
//! without racing a concurrent test's drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use madpipe_json::{ToJson, Value};
use madpipe_model::{Chain, Layer, Platform};
use madpipe_obs::flight::{FlightEvent, FlightKind};
use madpipe_serve::{ServeConfig, Server};

/// Same deterministic instance family as the integration suite.
fn instance(seed: u64) -> (Chain, Platform) {
    let layers = (0..6)
        .map(|i| {
            let x = ((seed * 37 + i * 11) % 17 + 1) as f64;
            Layer::new(
                format!("l{i}"),
                1e-3 * x,
                2e-3 * x,
                1 << 20,
                (4 + (i + seed) % 4) << 20,
            )
        })
        .collect();
    let chain = Chain::new(format!("net{seed}"), 1 << 20, layers).unwrap();
    let platform = Platform::gb(4, 2, 12.0).unwrap();
    (chain, platform)
}

fn plan_line(chain: &Chain, platform: &Platform) -> String {
    Value::Object(vec![
        ("cmd".into(), Value::Str("plan".into())),
        ("chain".into(), chain.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
            ]),
        ),
    ])
    .to_string_compact()
}

/// Splice a trace context onto a request line, the way a tracing client
/// (or the router, for `parent`) would.
fn traced_line(line: &str, trace: u64, parent: u64) -> String {
    let parent = if parent == 0 {
        String::new()
    } else {
        format!(",\"parent\":\"{}\"", madpipe_obs::hex_id(parent))
    };
    format!(
        "{},\"trace\":\"{}\"{parent}}}",
        line.strip_suffix('}').unwrap(),
        madpipe_obs::hex_id(trace),
    )
}

fn start_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_entries: 64,
        timeout: Duration::from_secs(60),
        queue_depth: 64,
        panic_marker: None,
        ..ServeConfig::default()
    })
    .expect("bind")
}

/// Events of one request's trace with a given name.
fn spans_of<'a>(events: &'a [FlightEvent], trace: u64, name: &str) -> Vec<&'a FlightEvent> {
    events
        .iter()
        .filter(|e| e.trace == trace && e.name == name)
        .collect()
}

/// Read one response line, assert it echoes `trace`, return the
/// server-minted span id it carries.
fn read_echo(reader: &mut BufReader<TcpStream>, trace: u64) -> u64 {
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    let v = Value::parse(response.trim()).expect("response is JSON");
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(true), "{response}");
    assert_eq!(
        v.field("trace").unwrap().as_str().unwrap(),
        madpipe_obs::hex_id(trace),
        "response must echo the request's trace id, in request order"
    );
    let span = madpipe_obs::parse_hex_id(v.field("span").unwrap().as_str().unwrap())
        .expect("span id is 16-hex");
    assert_ne!(span, 0);
    span
}

#[test]
fn traced_requests_retire_in_order_with_linked_spans() {
    let server = start_server();
    let addr = server.local_addr();

    let instances: Vec<String> = (0..3)
        .map(|s| {
            let (chain, platform) = instance(s);
            plan_line(&chain, &platform)
        })
        .collect();
    let traces: Vec<u64> = (1..=6u64).map(|i| 0xace0_0000_0000_0000 | i).collect();
    // The last request also carries an inbound parent, as if a router
    // hop had forwarded it.
    let router_span = 0xbeef_0000_0000_0001u64;

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut echoed = Vec::new();

    // Wave 1: first touch of instances 0 and 1 — deterministic cache
    // misses, planned by workers. Read both responses so the plans are
    // in the cache (and the workers idle) before wave 2.
    for (i, trace) in traces[..2].iter().enumerate() {
        let line = traced_line(&instances[i], *trace, 0);
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        echoed.push(read_echo(&mut reader, *trace));
    }

    // Wave 2, pipelined in one write: two warm repeats around a brand
    // new instance. The repeats are instant submit-time cache hits; the
    // miss in the middle must not let the hit behind it overtake —
    // front-only retirement answers strictly in request order.
    let wave2 = [
        (&instances[0], traces[2], 0),
        (&instances[2], traces[3], 0), // cold: worker + DP
        (&instances[1], traces[4], 0),
        (&instances[0], traces[5], router_span),
    ];
    let payload: String = wave2
        .iter()
        .map(|(line, trace, parent)| format!("{}\n", traced_line(line, *trace, *parent)))
        .collect();
    stream.write_all(payload.as_bytes()).unwrap();
    for (_, trace, _) in &wave2 {
        echoed.push(read_echo(&mut reader, *trace));
    }

    server.shutdown();
    server.join();

    let ours: Vec<FlightEvent> = madpipe_obs::flight::drain()
        .into_iter()
        .filter(|e| traces.contains(&e.trace))
        .collect();

    for (i, trace) in traces.iter().enumerate() {
        let planned = i < 2 || i == 3; // cold instances; the rest are hits
        let request = spans_of(&ours, *trace, "serve.request");
        assert_eq!(request.len(), 1, "one request span per trace");
        let request = request[0];
        assert_eq!(
            request.span, echoed[i],
            "the echoed span id is the request span"
        );
        let expected_parent = if i == 5 { router_span } else { 0 };
        assert_eq!(
            request.parent, expected_parent,
            "the inbound parent (the router hop) is preserved"
        );

        let waits = spans_of(&ours, *trace, "serve.queue.wait");
        let workers = spans_of(&ours, *trace, "serve.worker");
        let dps = spans_of(&ours, *trace, "serve.dp");
        let hits = spans_of(&ours, *trace, "serve.cache.hit");
        let misses = spans_of(&ours, *trace, "serve.cache.miss");
        if planned {
            assert_eq!((misses.len(), hits.len()), (1, 0), "request {i} is cold");
            assert_eq!(misses[0].kind, FlightKind::Instant);
            assert_eq!(misses[0].parent, request.span);
            assert_eq!(waits.len(), 1, "request {i} queued once");
            assert_eq!(waits[0].parent, request.span);
            assert_eq!(workers.len(), 1, "request {i} ran a worker");
            assert_eq!(workers[0].parent, request.span);
            assert_eq!(dps.len(), 1, "request {i} ran the DP");
            assert_eq!(dps[0].parent, workers[0].span, "DP nests in the worker");
            assert!(workers[0].dur_us >= dps[0].dur_us, "worker contains the DP");
        } else {
            assert_eq!((misses.len(), hits.len()), (0, 1), "request {i} is warm");
            assert_eq!(hits[0].parent, request.span);
            assert_eq!(
                waits.len() + workers.len() + dps.len(),
                0,
                "a submit-time hit never reaches the queue"
            );
        }
    }

    // The whole drained set (minus the synthetic router parent, which no
    // local event defines) replays through the trace validator: every
    // parent link resolves, no duplicate span ids, no cycles.
    let validated: Vec<FlightEvent> = ours
        .iter()
        .filter(|e| e.trace != traces[5])
        .copied()
        .collect();
    let jsonl = madpipe_obs::flight::render_jsonl(&validated);
    let summary = madpipe_obs::validate::validate_trace_text(&jsonl).expect("dump validates");
    assert_eq!(
        summary.spans,
        3 * 4 + 2,
        "3 planned requests x (request, wait, worker, dp) + 2 warm requests x (request)"
    );
    assert!(summary.span_names.contains("serve.request"));
    assert!(summary.span_names.contains("serve.dp"));
}
