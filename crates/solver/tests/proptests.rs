//! Property tests: the branch-and-bound scheduler against the provably
//! optimal 1F1B* on contiguous instances, and structural invariants on
//! random non-contiguous allocations.

use proptest::prelude::*;

use madpipe_model::{Allocation, Chain, Layer, Partition, Platform, Stage, UnitSequence};
use madpipe_schedule::{best_contiguous_period, check_pattern, one_f1b_star};
use madpipe_solver::{best_period, PlaceConfig};

fn arb_chain() -> impl Strategy<Value = Chain> {
    prop::collection::vec((0.1f64..5.0, 0.1f64..5.0, 0u64..1_000, 1u64..20_000), 2..=7).prop_map(
        |specs| {
            let layers = specs
                .iter()
                .enumerate()
                .map(|(i, &(f, b, w, a))| Layer::new(format!("l{i}"), f, b, w, a))
                .collect();
            Chain::new("random", 2_000, layers).expect("well-formed")
        },
    )
}

fn arb_cuts(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(prop::bool::ANY, n - 1).prop_map(|mask| {
        mask.iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i + 1)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On contiguous allocations the solver is never worse than the
    /// optimal 1F1B* period (it reproduces the same schedule shape), and
    /// never claims a period below the load bound.
    #[test]
    fn solver_matches_optimal_on_contiguous(
        (chain, cuts) in arb_chain().prop_flat_map(|c| {
            let n = c.len();
            (Just(c), arb_cuts(n))
        }),
        mem_scale in 0u64..6
    ) {
        let part = Partition::from_cuts(&cuts, chain.len()).unwrap();
        let n_gpus = part.len();
        let alloc = Allocation::contiguous(&part, n_gpus).unwrap();

        // A memory budget between "single group barely fits" and roomy.
        let plenty = Platform::new(n_gpus, u64::MAX / 4, 500.0).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &plenty, &alloc);
        let relaxed = one_f1b_star(&seq, seq.total_load());
        let base = check_pattern(&chain, &plenty, &alloc, &seq, &relaxed)
            .unwrap()
            .gpu_peak_bytes
            .into_iter()
            .max()
            .unwrap();
        let budget = base + base / 4 * mem_scale + 1;
        let platform = Platform::new(n_gpus, budget, 500.0).unwrap();

        let reference = best_contiguous_period(&chain, &platform, &alloc)
            .expect("budget covers the sequential schedule");
        let solved = best_period(&chain, &platform, &alloc, &PlaceConfig::default())
            .expect("solver must find the sequential schedule too");

        prop_assert!(
            solved.period <= reference.period + 1e-6,
            "solver {} vs optimal 1F1B* {}",
            solved.period,
            reference.period
        );
        prop_assert!(solved.period + 1e-9 >= alloc.load_bound(&chain, &platform));
    }

    /// Random non-contiguous allocations (arbitrary stage → GPU maps)
    /// either solve to a pattern the exact checker accepts, or report a
    /// memory error; the period respects the load bound.
    #[test]
    fn random_allocations_solve_or_fail_cleanly(
        (chain, cuts, gpu_seed) in arb_chain().prop_flat_map(|c| {
            let n = c.len();
            (Just(c), arb_cuts(n), any::<u64>())
        })
    ) {
        let part = Partition::from_cuts(&cuts, chain.len()).unwrap();
        let n_stages = part.len();
        let n_gpus = n_stages.clamp(1, 3);
        // Deterministic pseudo-random stage→GPU map covering each GPU.
        let stages: Vec<Stage> = part
            .stages()
            .iter()
            .enumerate()
            .map(|(i, r)| Stage {
                layers: r.clone(),
                gpu: if i < n_gpus { i } else { (gpu_seed as usize + 7 * i) % n_gpus },
            })
            .collect();
        let alloc = Allocation::new(stages, chain.len(), n_gpus).unwrap();
        let platform = Platform::new(n_gpus, 1 << 40, 500.0).unwrap();

        match best_period(&chain, &platform, &alloc, &PlaceConfig::default()) {
            Ok(solved) => {
                prop_assert!(solved.period + 1e-9 >= alloc.load_bound(&chain, &platform));
                // Re-validate from scratch.
                let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
                prop_assert!(check_pattern(&chain, &platform, &alloc, &seq, &solved.pattern).is_ok());
            }
            Err(_) => {
                // With 1 TiB of memory this should essentially never
                // happen; tolerate only genuine structural failures.
                prop_assert!(false, "solver failed on a roomy instance");
            }
        }
    }
}
