//! Floating-point comparison helpers.
//!
//! Periods, start times and durations are `f64` seconds; schedule
//! feasibility checks compare sums of such values and must tolerate
//! rounding noise. All crates in the workspace use the helpers below with
//! the shared [`EPS`] so that "fits within the period" means the same
//! thing everywhere.

/// Absolute tolerance used by all schedule feasibility comparisons.
///
/// Model times are O(1e-3 .. 1e1) seconds, so 1e-9 is ~6 orders of
/// magnitude below the smallest meaningful duration while well above
/// accumulated f64 rounding error for the chain lengths we handle.
pub const EPS: f64 = 1e-9;

/// `a ≤ b` up to [`EPS`].
#[inline]
pub fn fle(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a < b` by more than [`EPS`].
#[inline]
pub fn flt(a: f64, b: f64) -> bool {
    a < b - EPS
}

/// `a ≥ b` up to [`EPS`].
#[inline]
pub fn fge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a == b` up to [`EPS`].
#[inline]
pub fn feq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Ceiling of `x / y` as an integer, robust to `x` being within [`EPS`]
/// of an exact multiple of `y` (in which case the exact ratio is used).
///
/// This is the `⌈·/T̂⌉` used throughout §4.2 of the paper; without the
/// tolerance, `ceil(3.0000000001/1.0)` would return 4 groups instead of 3
/// and inflate every memory estimate.
#[inline]
pub fn ceil_div(x: f64, y: f64) -> u64 {
    debug_assert!(y > 0.0, "ceil_div requires a positive divisor");
    if x <= EPS {
        return 0;
    }
    let q = x / y;
    let r = q.round();
    if (q - r).abs() <= EPS / y {
        r as u64
    } else {
        q.ceil() as u64
    }
}

/// One step of the `⊕` delay-propagation algebra of §4.2.2: fold the
/// load `y` of the next element (walking the chain back-to-front) into
/// the accumulated delay `x` at target period `t`:
///
/// ```text
/// x ⊕ y = x + y            if ⌈x/t⌉ = ⌈(x+y)/t⌉   (same group)
///       = t·⌈x/t⌉ + y      otherwise               (new group opens)
/// ```
///
/// Zero-cost elements never open a new group (`x ⊕ 0 = x`).
///
/// This lives here (not in `madpipe-core`) because *both* sides of the
/// planner must make identical grouping decisions at period boundaries:
/// the DP derives `g = ⌈(V + U)/T̂⌉` from delays propagated with this
/// step, and 1F1B*'s greedy packer assigns the actual groups. Both now
/// share this function and [`ceil_div`]'s boundary snapping, so a load
/// landing exactly on a multiple of the period (within [`EPS`]) counts
/// the same number of groups in the estimate and in the schedule.
#[inline]
pub fn group_step(x: f64, y: f64, t: f64) -> f64 {
    debug_assert!(t > 0.0, "group_step requires a positive target period");
    debug_assert!(x >= 0.0 && y >= 0.0);
    if y == 0.0 {
        return x;
    }
    let gx = ceil_div(x, t);
    let gxy = ceil_div(x + y, t);
    if gx == gxy {
        x + y
    } else {
        t * gx as f64 + y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_tolerate_eps() {
        assert!(fle(1.0 + 1e-12, 1.0));
        assert!(!fle(1.0 + 1e-6, 1.0));
        assert!(flt(0.9, 1.0));
        assert!(!flt(1.0 - 1e-12, 1.0));
        assert!(fge(1.0 - 1e-12, 1.0));
        assert!(feq(2.0, 2.0 + 1e-10));
    }

    #[test]
    fn ceil_div_handles_near_multiples() {
        assert_eq!(ceil_div(3.0, 1.0), 3);
        assert_eq!(ceil_div(3.0 + 1e-12, 1.0), 3);
        assert_eq!(ceil_div(3.1, 1.0), 4);
        assert_eq!(ceil_div(0.0, 1.0), 0);
        assert_eq!(ceil_div(-1.0, 1.0), 0);
        assert_eq!(ceil_div(1e-12, 1.0), 0);
    }

    #[test]
    fn ceil_div_scales_with_divisor() {
        assert_eq!(ceil_div(10.0, 2.5), 4);
        assert_eq!(ceil_div(10.1, 2.5), 5);
    }

    #[test]
    fn group_step_matches_the_paper_cases() {
        // Same group: plain addition.
        assert_eq!(group_step(1.0, 0.5, 2.0), 1.5);
        // Boundary crossed: snap to the window, then add.
        assert_eq!(group_step(1.5, 1.0, 2.0), 3.0);
        // Zero load is the identity.
        assert_eq!(group_step(3.7, 0.0, 2.0), 3.7);
        // An exact multiple of the period stays in its group.
        assert_eq!(group_step(2.0, 0.5, 2.0), 2.5);
        assert_eq!(group_step(2.0 + 1e-12, 0.5, 2.0), 2.5);
    }

    #[test]
    fn group_step_delay_counts_groups_via_ceil_div() {
        // Invariant tying the two sides of the planner together: after
        // folding loads back-to-front, ⌈delay/t⌉ equals the number of
        // greedy groups the same loads pack into — including loads that
        // land exactly on multiples of t.
        let t = 4.0;
        for loads in [
            vec![4.0, 4.0, 4.0],      // exact multiples: one group each
            vec![2.0, 2.0, 2.0, 2.0], // pairs fill a window exactly
            vec![3.0, 1.0, 2.0, 2.0], // mixed, boundary-exact
            vec![2.5, 2.5, 2.5],      // never exact
        ] {
            let mut delay = 0.0;
            let mut greedy_groups = 0u64;
            let mut acc = 0.0;
            for &y in loads.iter().rev() {
                delay = group_step(delay, y, t);
                if acc > 0.0 && acc + y > t + EPS {
                    greedy_groups += 1;
                    acc = 0.0;
                }
                acc += y;
            }
            if acc > 0.0 {
                greedy_groups += 1;
            }
            assert_eq!(
                ceil_div(delay, t),
                greedy_groups,
                "loads {loads:?}: delay {delay} vs greedy {greedy_groups}"
            );
        }
    }
}
