//! ASCII Gantt rendering of periodic patterns (one period), in the style
//! of the paper's Figures 2 and 3.

use std::fmt::Write as _;

use madpipe_model::{Resource, UnitSequence};

use crate::pattern::{Dir, Pattern};

/// Render one period of `pattern` as an ASCII Gantt chart, one row per
/// resource. Forward ops print as `F`, backwards as `B`, communications
/// as `f`/`b`; the index shift of each op is listed below the chart.
pub fn render(seq: &UnitSequence, pattern: &Pattern, width: usize) -> String {
    let width = width.max(20);
    let t = pattern.period;
    let mut resources: Vec<Resource> = pattern.ops.iter().map(|o| o.resource).collect();
    resources.sort();
    resources.dedup();

    let mut out = String::new();
    let _ = writeln!(out, "period T = {:.6}s  ({} ops)", t, pattern.ops.len());
    for r in &resources {
        let mut row = vec!['.'; width];
        for op in pattern.ops.iter().filter(|o| o.resource == *r) {
            let is_comm = seq.units()[op.unit].is_comm();
            let ch = match (op.dir, is_comm) {
                (Dir::Forward, false) => 'F',
                (Dir::Backward, false) => 'B',
                (Dir::Forward, true) => 'f',
                (Dir::Backward, true) => 'b',
            };
            paint(&mut row, op.start, op.duration, t, ch);
        }
        let label = match r {
            Resource::Gpu(g) => format!("gpu{g:<2}"),
            Resource::Link(a, b) => format!("l{a}-{b} "),
        };
        let _ = writeln!(out, "{label} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "shifts:");
    let mut ops: Vec<_> = pattern.ops.iter().collect();
    ops.sort_by_key(|a| (a.unit, a.dir == Dir::Backward));
    for op in ops {
        let kind = if seq.units()[op.unit].is_comm() {
            "comm"
        } else {
            "stage"
        };
        let dir = match op.dir {
            Dir::Forward => "F",
            Dir::Backward => "B",
        };
        let _ = writeln!(
            out,
            "  {dir} {kind:<5} unit {:<3} start {:>9.4}  dur {:>9.4}  shift {}",
            op.unit, op.start, op.duration, op.shift
        );
    }
    out
}

/// Paint the (possibly wrapped) interval `[start, start+dur)` into `row`.
fn paint(row: &mut [char], start: f64, dur: f64, period: f64, ch: char) {
    if dur <= 0.0 {
        return;
    }
    let w = row.len() as f64;
    let mut segments = vec![];
    let end = start + dur;
    if end <= period {
        segments.push((start, end));
    } else {
        segments.push((start, period));
        segments.push((0.0, end - period));
    }
    for (s, e) in segments {
        let a = ((s / period) * w).floor() as usize;
        let b = (((e / period) * w).ceil() as usize).min(row.len());
        for cell in row.iter_mut().take(b).skip(a) {
            *cell = ch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_f1b::one_f1b_star;
    use madpipe_model::{Allocation, Chain, Layer, Partition, Platform, UnitSequence};

    #[test]
    fn renders_rows_for_every_resource() {
        let chain = Chain::new(
            "t",
            100,
            vec![
                Layer::new("a", 2.0, 2.0, 0, 100),
                Layer::new("b", 2.0, 2.0, 0, 100),
            ],
        )
        .unwrap();
        let platform = Platform::new(2, 1 << 40, 100.0).unwrap();
        let part = Partition::from_cuts(&[1], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let pattern = one_f1b_star(&seq, 10.0);
        let s = render(&seq, &pattern, 60);
        assert!(s.contains("gpu0"));
        assert!(s.contains("gpu1"));
        assert!(s.contains("l0-1"));
        assert!(s.contains("period T = 10.0"));
        // 3 resource rows + header + shift lines for 6 ops
        assert!(s.lines().count() >= 10);
    }

    #[test]
    fn paint_wraps_over_the_boundary() {
        let mut row = vec!['.'; 10];
        paint(&mut row, 8.0, 4.0, 10.0, 'X');
        assert_eq!(row.iter().collect::<String>(), "XX......XX");
    }
}
