//! Always-on flight recorder: a fixed-size, lock-free ring of recent
//! span/counter events, dumped post-mortem (panic, SIGTERM, chaos
//! daemon-kill) as a JSONL artifact that `madpipe trace-merge` and
//! `validate-trace` consume.
//!
//! Unlike the [`crate::span`] tracer — opt-in, unbounded, drained by the
//! process that enabled it — the flight recorder is always recording and
//! never allocates after construction. Each slot is a per-slot seqlock:
//! a writer claims a sequence number with one `fetch_add`, claims the
//! slot by CAS-ing its stamp odd (`2·seq+1`), stores the event as plain
//! atomic words, and stamps it even (`2·seq+2`). A reader copies the
//! words between two stamp loads and discards the copy if the stamps
//! disagree — so a reader can never observe a torn event. Writers never
//! wait for readers or each other: a writer that loses the claim CAS
//! (a same-slot race, only possible when another writer is a full lap
//! of the ring away) sheds its own event rather than tear the winner's.
//! Every shed event — lost claim race, or lapping an event no reader
//! consumed — increments `dropped` exactly once, so
//! `drained + dropped == recorded` holds at rest: the recorder sheds
//! history, never throughput, and never miscounts the loss.
//!
//! Events carry wall-clock timestamps ([`crate::context::now_unix_us`])
//! and the distributed trace/span/parent ids (0 = absent), so dumps
//! from different daemons merge onto one cluster timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use madpipe_json::Value;

use crate::context::hex_id;

/// What one flight event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A completed span (`ph:"X"`): `ts_us` + `dur_us`.
    Span,
    /// A point event (`ph:"i"`): cache hit/miss, panic marker.
    Instant,
    /// A counter sample (`ph:"C"`): `value`.
    Counter,
}

impl FlightKind {
    fn code(self) -> u64 {
        match self {
            FlightKind::Span => 0,
            FlightKind::Instant => 1,
            FlightKind::Counter => 2,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(FlightKind::Span),
            1 => Some(FlightKind::Instant),
            2 => Some(FlightKind::Counter),
            _ => None,
        }
    }
}

/// One event read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    pub kind: FlightKind,
    pub name: &'static str,
    /// Wall-clock µs since the UNIX epoch.
    pub ts_us: f64,
    /// Span duration in µs (0 for instants/counters).
    pub dur_us: f64,
    /// Distributed trace id (0 = untraced).
    pub trace: u64,
    /// This event's span id (0 = none).
    pub span: u64,
    /// Parent span id (0 = root or untraced).
    pub parent: u64,
    /// Counter value (0 for spans/instants).
    pub value: f64,
    /// Dense thread id, shared with the span tracer.
    pub tid: u64,
    /// Ring sequence number: globally ordered, strictly increasing.
    pub seq: u64,
}

/// Payload word count per slot: name (ptr, len), ts, dur, trace, span,
/// parent, value, kind|tid.
const WORDS: usize = 9;

struct Slot {
    /// 0 = never written; `2·seq+1` = seq's writer mid-store;
    /// `2·seq+2` = seq's event complete.
    stamp: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-capacity lock-free event ring. The process-global instance
/// behind [`record_span`] & co. is what the daemons dump; standalone
/// rings exist for tests.
pub struct FlightRing {
    slots: Vec<Slot>,
    /// Next sequence number to claim.
    next: AtomicU64,
    /// First sequence number not yet consumed by [`FlightRing::drain`].
    read_cursor: AtomicU64,
    /// Events overwritten before any reader consumed them.
    dropped: AtomicU64,
}

impl FlightRing {
    /// A ring holding at least `capacity` events (rounded up to a power
    /// of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        FlightRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            next: AtomicU64::new(0),
            read_cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events lost: overwritten before a drain consumed them, or shed
    /// in a same-slot claim race. `drained + dropped == recorded` at
    /// rest.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::SeqCst)
    }

    pub fn record_span(
        &self,
        name: &'static str,
        ts_us: f64,
        dur_us: f64,
        trace: u64,
        span: u64,
        parent: u64,
    ) {
        self.record(
            FlightKind::Span,
            name,
            ts_us,
            dur_us,
            trace,
            span,
            parent,
            0.0,
        );
    }

    pub fn record_instant(&self, name: &'static str, ts_us: f64, trace: u64, parent: u64) {
        self.record(FlightKind::Instant, name, ts_us, 0.0, trace, 0, parent, 0.0);
    }

    pub fn record_counter(&self, name: &'static str, ts_us: f64, value: f64) {
        self.record(FlightKind::Counter, name, ts_us, 0.0, 0, 0, 0, value);
    }

    /// Everything is `SeqCst`: the single total order makes the seqlock
    /// argument direct (a reader whose two stamp loads agree read every
    /// payload word from that stamp's writer), and a few sequentially
    /// consistent stores per event is still far below one clock read.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        kind: FlightKind,
        name: &'static str,
        ts_us: f64,
        dur_us: f64,
        trace: u64,
        span: u64,
        parent: u64,
        value: f64,
    ) {
        let cap = self.slots.len() as u64;
        let seq = self.next.fetch_add(1, Ordering::SeqCst);
        let slot = &self.slots[(seq % cap) as usize];
        // Claim the slot by CAS so word stores are exclusive: a writer
        // whose claim fails is racing another writer a full lap away —
        // shed our event (counted) rather than tear theirs.
        let prev = slot.stamp.load(Ordering::SeqCst);
        if prev % 2 == 1
            || slot
                .stamp
                .compare_exchange(prev, 2 * seq + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        // The claim displaced whatever complete event the slot held
        // (stamp 2·s+2, i.e. displaced seq = prev/2 − 1); if no drain
        // consumed it, that history is lost — count it.
        if prev != 0 && prev / 2 > self.read_cursor.load(Ordering::SeqCst) {
            self.dropped.fetch_add(1, Ordering::SeqCst);
        }
        let w = &slot.words;
        w[0].store(name.as_ptr() as u64, Ordering::SeqCst);
        w[1].store(name.len() as u64, Ordering::SeqCst);
        w[2].store(ts_us.to_bits(), Ordering::SeqCst);
        w[3].store(dur_us.to_bits(), Ordering::SeqCst);
        w[4].store(trace, Ordering::SeqCst);
        w[5].store(span, Ordering::SeqCst);
        w[6].store(parent, Ordering::SeqCst);
        w[7].store(value.to_bits(), Ordering::SeqCst);
        w[8].store(
            kind.code() | (crate::span::current_tid() << 8),
            Ordering::SeqCst,
        );
        slot.stamp.store(2 * seq + 2, Ordering::SeqCst);
    }

    /// Snapshot every consistent, not-yet-consumed event, oldest first,
    /// and advance the read cursor past them. Slots mid-write are
    /// skipped (their loss, if lapped, is already in `dropped`).
    pub fn drain(&self) -> Vec<FlightEvent> {
        let cursor = self.read_cursor.load(Ordering::SeqCst);
        let mut events: Vec<FlightEvent> = Vec::new();
        for slot in &self.slots {
            let s1 = slot.stamp.load(Ordering::SeqCst);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let words: [u64; WORDS] = std::array::from_fn(|i| slot.words[i].load(Ordering::SeqCst));
            if slot.stamp.load(Ordering::SeqCst) != s1 {
                continue; // overwritten mid-copy; the lap counted it dropped
            }
            let seq = s1 / 2 - 1;
            if seq < cursor {
                continue; // already consumed by an earlier drain
            }
            let Some(kind) = FlightKind::from_code(words[8] & 0xff) else {
                continue;
            };
            // SAFETY: the matching stamp pair proves every word is from
            // one completed `record` call, whose (ptr, len) came from a
            // live `&'static str`.
            let name: &'static str = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    words[0] as *const u8,
                    words[1] as usize,
                ))
            };
            events.push(FlightEvent {
                kind,
                name,
                ts_us: f64::from_bits(words[2]),
                dur_us: f64::from_bits(words[3]),
                trace: words[4],
                span: words[5],
                parent: words[6],
                value: f64::from_bits(words[7]),
                tid: words[8] >> 8,
                seq,
            });
        }
        events.sort_by_key(|e| e.seq);
        if let Some(last) = events.last() {
            self.read_cursor.fetch_max(last.seq + 1, Ordering::SeqCst);
        }
        events
    }
}

/// The process-global ring behind the free functions below (16Ki
/// events ≈ the last few seconds of a saturated daemon).
fn ring() -> &'static FlightRing {
    static RING: OnceLock<FlightRing> = OnceLock::new();
    RING.get_or_init(|| FlightRing::with_capacity(1 << 14))
}

/// Record a completed span into the global ring.
pub fn record_span(
    name: &'static str,
    ts_us: f64,
    dur_us: f64,
    trace: u64,
    span: u64,
    parent: u64,
) {
    ring().record_span(name, ts_us, dur_us, trace, span, parent);
}

/// Record a point event into the global ring.
pub fn record_instant(name: &'static str, ts_us: f64, trace: u64, parent: u64) {
    ring().record_instant(name, ts_us, trace, parent);
}

/// Record a counter sample into the global ring.
pub fn record_counter(name: &'static str, ts_us: f64, value: f64) {
    ring().record_counter(name, ts_us, value);
}

/// Events the global ring overwrote before any dump consumed them
/// (surfaced as the daemon's `serve.events.dropped` counter).
pub fn dropped() -> u64 {
    ring().dropped()
}

/// Drain the global ring (see [`FlightRing::drain`]).
pub fn drain() -> Vec<FlightEvent> {
    ring().drain()
}

/// Render events as flight-dump JSONL: one Chrome-vocabulary event
/// object per line (`ph` X/i/C), with the distributed ids as hex
/// strings under `args` — the format `trace-merge` stitches and
/// `validate-trace` accepts directly.
pub fn render_jsonl(events: &[FlightEvent]) -> String {
    let pid = u64::from(std::process::id());
    let mut out = String::new();
    for e in events {
        let mut args: Vec<(String, Value)> = Vec::new();
        if e.trace != 0 {
            args.push(("trace".into(), Value::Str(hex_id(e.trace))));
        }
        if e.span != 0 {
            args.push(("span".into(), Value::Str(hex_id(e.span))));
        }
        if e.parent != 0 {
            args.push(("parent".into(), Value::Str(hex_id(e.parent))));
        }
        if e.kind == FlightKind::Counter {
            args.push(("value".into(), Value::Float(e.value)));
        }
        args.push(("seq".into(), Value::UInt(e.seq)));
        let ph = match e.kind {
            FlightKind::Span => "X",
            FlightKind::Instant => "i",
            FlightKind::Counter => "C",
        };
        let mut fields = vec![
            ("name".to_string(), Value::Str(e.name.to_string())),
            ("ph".into(), Value::Str(ph.into())),
            ("pid".into(), Value::UInt(pid)),
            ("tid".into(), Value::UInt(e.tid)),
            ("ts".into(), Value::Float(e.ts_us)),
        ];
        if e.kind == FlightKind::Span {
            fields.push(("dur".into(), Value::Float(e.dur_us)));
        }
        fields.push(("cat".into(), Value::Str("flight".into())));
        fields.push(("args".into(), Value::Object(args)));
        out.push_str(&Value::Object(fields).to_string_compact());
        out.push('\n');
    }
    out
}

/// Drain the global ring and *append* it as JSONL to `path`; returns
/// how many events this drain added. Appending means repeated dumps
/// (a worker-panic dump followed by the exit dump) accumulate into one
/// artifact whose union is link-complete — a span recorded after an
/// earlier dump still lands in the same file as the children that
/// reference it. An empty drain still creates the (empty) file so
/// supervisors can distinguish "dumped nothing" from "never dumped".
pub fn write_dump(path: &str) -> std::io::Result<usize> {
    use std::io::Write as _;
    let events = drain();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(render_jsonl(&events).as_bytes())?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_round_trips_events_in_order() {
        let ring = FlightRing::with_capacity(64);
        ring.record_span("serve.request", 100.0, 5.0, 0xabc, 0xdef, 0x123);
        ring.record_instant("serve.cache.hit", 101.0, 0xabc, 0xdef);
        ring.record_counter("serve.queue.depth", 102.0, 7.0);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "serve.request");
        assert_eq!(events[0].kind, FlightKind::Span);
        assert_eq!(events[0].trace, 0xabc);
        assert_eq!(events[0].span, 0xdef);
        assert_eq!(events[0].parent, 0x123);
        assert_eq!(events[0].dur_us, 5.0);
        assert_eq!(events[1].kind, FlightKind::Instant);
        assert_eq!(events[2].kind, FlightKind::Counter);
        assert_eq!(events[2].value, 7.0);
        assert_eq!(ring.dropped(), 0);
        // A second drain returns nothing new.
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn lapping_unread_events_counts_drops() {
        let ring = FlightRing::with_capacity(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20 {
            ring.record_counter("c", i as f64, i as f64);
        }
        assert_eq!(ring.dropped(), 12, "20 written into 8 slots drops 12");
        let events = ring.drain();
        assert_eq!(events.len(), 8, "the newest capacity-many survive");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        // Drained events don't count as dropped when lapped later.
        for i in 0..8 {
            ring.record_counter("c", i as f64, 0.0);
        }
        assert_eq!(ring.dropped(), 12, "lapping consumed slots is free");
    }

    #[test]
    fn jsonl_rendering_is_chrome_compatible() {
        let ring = FlightRing::with_capacity(8);
        ring.record_span("serve.request", 1.7e15, 42.0, 1, 2, 3);
        ring.record_instant("serve.panic", 1.7e15, 0, 0);
        let text = render_jsonl(&ring.drain());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let span = Value::parse(lines[0]).unwrap();
        assert_eq!(span.field("ph").unwrap().as_str(), Ok("X"));
        assert_eq!(
            span.field("args").unwrap().field("span").unwrap().as_str(),
            Ok("0000000000000002")
        );
        assert_eq!(
            span.field("args")
                .unwrap()
                .field("parent")
                .unwrap()
                .as_str(),
            Ok("0000000000000003")
        );
        let instant = Value::parse(lines[1]).unwrap();
        assert_eq!(instant.field("ph").unwrap().as_str(), Ok("i"));
        assert!(instant.field("args").unwrap().get("trace").is_none());
    }
}
