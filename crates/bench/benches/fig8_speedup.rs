//! Figure 8 regenerator + scalability benchmark.
//!
//! Regenerates the Figure 8 data (speedup `U(1,L)/period` vs number of
//! GPUs per network and memory limit; printed and saved to
//! `results/fig8_speedups.csv`), then benchmarks MadPipe planning as a
//! function of P on ResNet-50 (how planning cost itself scales).

use criterion::{criterion_group, criterion_main, Criterion};

use madpipe_bench::{fig8, paper_chains, run_cells, GridConfig};
use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_model::Platform;

fn generate_figure() -> Vec<madpipe_model::Chain> {
    let grid = GridConfig {
        p_values: (2..=8).collect(),
        m_values: vec![3, 8, 16],
        beta_values: vec![12.0],
        ..GridConfig::quick()
    };
    let chains = paper_chains(&grid);
    let results = run_cells(&chains, &grid.cells(), &PlannerConfig::default(), 0, false);
    let (text, table) = fig8::generate(&results);
    println!("{text}");
    table
        .save("results/fig8_speedups.csv")
        .expect("writable results directory");
    chains
}

fn bench(c: &mut Criterion) {
    let chains = generate_figure();
    let resnet = chains
        .iter()
        .find(|c| c.name() == "resnet50")
        .expect("resnet50 in the grid");
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        let platform = Platform::gb(p, 12, 12.0).unwrap();
        group.bench_function(format!("madpipe_plan/resnet50_p{p}_m12"), |b| {
            b.iter(|| {
                madpipe_plan(resnet, &platform, &PlannerConfig::default())
                    .unwrap()
                    .period()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
