//! Fault-injected pattern replay: execute a periodic pattern under
//! timing noise and observe whether its guarantees survive.
//!
//! [`crate::replay`] fires every operation exactly at its planned slot
//! `kT + t`; real clusters do not. This module replays the same pattern
//! under *clocked execution with overrun propagation*: an operation may
//! never start before its planned slot (the runtime is driven by the
//! planned schedule), but it must also wait for its dependencies and for
//! the previous operation on its resource to finish. With zero faults
//! every start collapses to the planned slot and the replay reproduces
//! [`crate::replay_pattern`] bit for bit; with faults, overruns cascade
//! along dependency and resource chains exactly as they would on a real
//! pipeline, and the achieved period and memory peaks drift away from
//! the analytic values once the schedule's slack is exhausted.
//!
//! Faults are multiplicative and deterministic per `(op, period, seed)`:
//! compute operations are stretched by a random factor in
//! `[1, 1 + compute_jitter]`, communications by a random factor in
//! `[1, 1 + comm_jitter]` on top of a bandwidth degradation
//! `β → (1 − beta_degradation)·β`.

use madpipe_model::{Allocation, Chain, Platform, Resource, StagePolicy, UnitKind, UnitSequence};
use madpipe_schedule::check::static_memory;
use madpipe_schedule::{Dir, Pattern};

use crate::report::SimReport;

/// A timing-fault specification for one perturbed replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Multiplicative jitter amplitude on compute durations (`u_F`,
    /// `u_B`): each instance is stretched by a factor drawn uniformly
    /// from `[1, 1 + compute_jitter]`.
    pub compute_jitter: f64,
    /// Same, for communication durations.
    pub comm_jitter: f64,
    /// Bandwidth degradation `d ∈ [0, 1)`: every communication is slowed
    /// by `1 / (1 − d)`, as if `β` dropped to `(1 − d)·β`.
    pub beta_degradation: f64,
    /// Seed of the deterministic per-instance noise stream.
    pub seed: u64,
}

impl FaultSpec {
    /// No faults at all: the replay must reproduce the planned schedule.
    pub fn zero() -> Self {
        Self {
            compute_jitter: 0.0,
            comm_jitter: 0.0,
            beta_degradation: 0.0,
            seed: 0,
        }
    }

    /// Symmetric compute + communication jitter of amplitude `j`.
    pub fn jitter(j: f64, seed: u64) -> Self {
        Self {
            compute_jitter: j,
            comm_jitter: j,
            beta_degradation: 0.0,
            seed,
        }
    }

    /// Pure bandwidth degradation `d` (deterministic, no jitter).
    pub fn degraded_bandwidth(d: f64) -> Self {
        Self {
            compute_jitter: 0.0,
            comm_jitter: 0.0,
            beta_degradation: d,
            seed: 0,
        }
    }

    /// True when every duration factor is exactly 1.
    pub fn is_zero(&self) -> bool {
        self.compute_jitter == 0.0 && self.comm_jitter == 0.0 && self.beta_degradation == 0.0
    }
}

/// Deterministic uniform sample in `[0, 1)` from `(seed, op, period)`,
/// via the SplitMix64 finalizer (stable across platforms and toolchains,
/// like `madpipe-dnn`'s chain generator).
fn noise(seed: u64, op: u64, period: u64) -> f64 {
    let mut z =
        seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ period.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One executed operation instance.
struct Instance {
    /// Index into `pattern.ops`.
    op: usize,
    /// Period index `k` (the instance processes batch `k − shift`).
    k: usize,
    /// Planned absolute start `kT + t`.
    planned: f64,
    /// Faulted duration.
    duration: f64,
    /// Achieved start (computed by the sweep).
    start: f64,
    /// Predecessor instance ids: dependencies + resource predecessor.
    preds: Vec<usize>,
}

/// Replay `pattern` for `periods` periods (plus warm-up) under `fault`,
/// measuring the achieved period and the per-GPU memory peaks.
///
/// Semantics: instance `i` starts at
/// `max(planned_i, max over predecessors of finish)` — never before its
/// planned slot, never before its inputs or its resource are available.
/// Dependency edges follow the unit chain (`F_{u-1} → F_u`,
/// `B_{u+1} → B_u`, `F_u → B_u`); resource edges follow the planned
/// execution order on each GPU and link. Predecessor finishes within a
/// relative `1e-9` of the planned slot are treated as on-time, so
/// floating-point slack in a *valid* pattern never masquerades as an
/// overrun and the zero-fault replay is exactly the planned schedule.
pub fn replay_perturbed(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    pattern: &Pattern,
    periods: usize,
    fault: &FaultSpec,
) -> SimReport {
    let policies = vec![StagePolicy::default(); alloc.stages().len()];
    replay_perturbed_with(chain, platform, alloc, &policies, pattern, periods, fault)
}

/// Policy-aware [`replay_perturbed`]: stage units carry per-stage
/// policies (recompute extends backward durations; memory moves the
/// policy-dependent per-batch bytes).
pub fn replay_perturbed_with(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    policies: &[StagePolicy],
    pattern: &Pattern,
    periods: usize,
    fault: &FaultSpec,
) -> SimReport {
    let mut sp = madpipe_obs::span("sim.perturb");
    let seq = UnitSequence::from_allocation_with(chain, platform, alloc, policies);
    let t_period = pattern.period;
    let warmup = pattern.max_shift() as usize + 1;
    let total_periods = warmup + periods.max(2);
    let eps = 1e-9 * t_period.max(1.0);
    let comm_slowdown = 1.0 / (1.0 - fault.beta_degradation.clamp(0.0, 0.999_999));

    // Executed instances (fill-phase firings with negative batches idle,
    // exactly like `replay_pattern`), created op-major with the period
    // index inner so ties resolve in the same order as the event queue
    // of the unperturbed replay.
    let mut instances: Vec<Instance> = Vec::new();
    // (op, k) → instance id, for dependency lookup.
    let mut index: Vec<Vec<Option<usize>>> = vec![vec![None; total_periods]; pattern.ops.len()];
    for (oi, op) in pattern.ops.iter().enumerate() {
        for (k, slot) in index[oi].iter_mut().enumerate() {
            if (k as i64 - op.shift as i64) < 0 {
                continue;
            }
            let factor = match op.resource {
                Resource::Gpu(_) => {
                    1.0 + fault.compute_jitter * noise(fault.seed, oi as u64, k as u64)
                }
                Resource::Link(..) => {
                    (1.0 + fault.comm_jitter * noise(fault.seed, oi as u64, k as u64))
                        * comm_slowdown
                }
            };
            let id = instances.len();
            *slot = Some(id);
            instances.push(Instance {
                op: oi,
                k,
                planned: k as f64 * t_period + op.start,
                duration: op.duration * factor,
                start: 0.0,
                preds: Vec::new(),
            });
        }
    }

    // Dependency edges. The op of `(unit, dir)` is found once; the
    // instance carrying batch `b` of an op with shift `h` lives in
    // period `k = b + h` (always ≤ the dependent's period in a valid
    // pattern, since dependencies cannot have larger shifts).
    let op_of = |unit: usize, dir: Dir| -> Option<usize> {
        pattern
            .ops
            .iter()
            .position(|o| o.unit == unit && o.dir == dir)
    };
    let n_units = seq.len();
    for inst in &mut instances {
        let op = &pattern.ops[inst.op];
        let batch = inst.k as i64 - op.shift as i64;
        let link = |pred_op: Option<usize>, preds: &mut Vec<usize>| {
            if let Some(po) = pred_op {
                let k = batch + pattern.ops[po].shift as i64;
                if k >= 0 && (k as usize) < total_periods {
                    if let Some(pid) = index[po][k as usize] {
                        preds.push(pid);
                    }
                }
            }
        };
        match op.dir {
            Dir::Forward => {
                if op.unit > 0 {
                    link(op_of(op.unit - 1, Dir::Forward), &mut inst.preds);
                }
            }
            Dir::Backward => {
                if op.unit + 1 < n_units {
                    link(op_of(op.unit + 1, Dir::Backward), &mut inst.preds);
                }
                link(op_of(op.unit, Dir::Forward), &mut inst.preds);
            }
        }
    }

    // Resource edges: planned execution order per resource.
    let mut by_resource: std::collections::HashMap<(u8, usize, usize), Vec<usize>> =
        std::collections::HashMap::new();
    for (id, inst) in instances.iter().enumerate() {
        let key = match pattern.ops[inst.op].resource {
            Resource::Gpu(g) => (0u8, g, 0),
            Resource::Link(a, b) => (1u8, a, b),
        };
        by_resource.entry(key).or_default().push(id);
    }
    for ids in by_resource.values_mut() {
        ids.sort_by(|&a, &b| {
            instances[a]
                .planned
                .total_cmp(&instances[b].planned)
                .then(a.cmp(&b))
        });
        for w in ids.windows(2) {
            let (prev, next) = (w[0], w[1]);
            instances[next].preds.push(prev);
        }
    }

    // Compute achieved start times: sweep in planned order, relaxing
    // until stable. One pass suffices whenever every predecessor sorts
    // strictly earlier (always true for positive durations); the loop
    // only guards zero-duration ties.
    let mut order: Vec<usize> = (0..instances.len()).collect();
    order.sort_by(|&a, &b| {
        instances[a]
            .planned
            .total_cmp(&instances[b].planned)
            .then(a.cmp(&b))
    });
    for id in &order {
        instances[*id].start = instances[*id].planned;
    }
    for _pass in 0..8 {
        let mut changed = false;
        for &id in &order {
            let mut ready = instances[id].planned;
            for p in 0..instances[id].preds.len() {
                let pid = instances[id].preds[p];
                let pf = instances[pid].start + instances[pid].duration;
                if pf > ready {
                    ready = pf;
                }
            }
            // Slack below eps is floating-point noise of a valid
            // pattern, not an overrun: snap back to the planned slot.
            let start = if ready <= instances[id].planned + eps {
                instances[id].planned
            } else {
                ready
            };
            if start != instances[id].start {
                instances[id].start = start;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if let Some(sp) = sp.as_mut() {
        // Fault cascade size: instances pushed past their planned slot.
        let overruns = instances.iter().filter(|i| i.start > i.planned).count();
        sp.arg("instances", instances.len() as f64);
        sp.arg("overruns", overruns as f64);
    }

    // Memory + throughput sweep over completions, in (time, creation)
    // order — the same tie-break as the unperturbed replay's event queue.
    let static_bytes = static_memory(chain, alloc, &seq);
    let mut dyn_bytes = vec![0i64; alloc.n_gpus()];
    let mut peak = static_bytes.clone();
    let mut busy_time = vec![0.0f64; alloc.n_gpus()];
    let mut done: Vec<usize> = (0..instances.len()).collect();
    done.sort_by(|&a, &b| {
        let fa = instances[a].start + instances[a].duration;
        let fb = instances[b].start + instances[b].duration;
        fa.total_cmp(&fb).then(a.cmp(&b))
    });

    let mut completions: Vec<f64> = Vec::new();
    let mut makespan = 0.0f64;
    for &id in &done {
        let inst = &instances[id];
        let op = &pattern.ops[inst.op];
        let t = inst.start + inst.duration;
        makespan = makespan.max(t);
        let unit = &seq.units()[op.unit];
        if let (UnitKind::Stage { layers, .. }, Resource::Gpu(g)) = (&unit.kind, unit.resource) {
            let stored = chain.stage_live_batch_bytes(layers.clone(), unit.policy) as i64;
            match op.dir {
                Dir::Forward => dyn_bytes[g] += stored,
                Dir::Backward => dyn_bytes[g] -= stored,
            }
            let total = (static_bytes[g] as i64 + dyn_bytes[g]).max(0) as u64;
            peak[g] = peak[g].max(total);
        }
        if let Resource::Gpu(g) = op.resource {
            busy_time[g] += inst.duration;
        }
        if op.unit == 0 && op.dir == Dir::Backward {
            completions.push(t);
        }
    }

    let period = if completions.len() >= 4 {
        let half = completions.len() / 2;
        (completions[completions.len() - 1] - completions[half - 1])
            / (completions.len() - half) as f64
    } else {
        t_period
    };

    let gpu_utilization = busy_time
        .iter()
        .map(|&bt| {
            if makespan > 0.0 {
                (bt / makespan).min(1.0)
            } else {
                0.0
            }
        })
        .collect();

    let memory_violation = peak.iter().any(|&p| p > platform.memory_bytes);
    SimReport {
        period,
        makespan,
        batches: completions.len(),
        gpu_peak_bytes: peak,
        gpu_utilization,
        memory_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_pattern;
    use madpipe_model::{Layer, Partition};
    use madpipe_schedule::{best_contiguous_period, check_pattern, one_f1b_star};

    fn setup() -> (Chain, Platform, Allocation) {
        let chain = Chain::new(
            "t",
            1000,
            vec![
                Layer::new("a", 1.0, 2.0, 64, 1000),
                Layer::new("b", 2.0, 1.0, 64, 500),
                Layer::new("c", 1.5, 1.5, 64, 250),
            ],
        )
        .unwrap();
        let platform = Platform::new(3, 1 << 20, 1000.0).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        (chain, platform, alloc)
    }

    #[test]
    fn zero_fault_reproduces_the_plain_replay_bit_for_bit() {
        let (chain, platform, alloc) = setup();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        let plain = replay_pattern(&chain, &platform, &alloc, &best.pattern, 50);
        let zero = replay_perturbed(
            &chain,
            &platform,
            &alloc,
            &best.pattern,
            50,
            &FaultSpec::zero(),
        );
        assert_eq!(zero.gpu_peak_bytes, plain.gpu_peak_bytes);
        assert_eq!(zero.period.to_bits(), plain.period.to_bits());
        assert_eq!(zero.batches, plain.batches);
        assert!(!zero.memory_violation);
    }

    #[test]
    fn zero_fault_matches_the_analytic_checker() {
        let (chain, platform, alloc) = setup();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let t = seq.max_unit_load() * 1.1;
        let pattern = one_f1b_star(&seq, t);
        let analytic = check_pattern(&chain, &platform, &alloc, &seq, &pattern).unwrap();
        let zero = replay_perturbed(&chain, &platform, &alloc, &pattern, 60, &FaultSpec::zero());
        assert_eq!(zero.gpu_peak_bytes, analytic.gpu_peak_bytes);
        assert!((zero.period - t).abs() < 1e-9 * t);
    }

    #[test]
    fn jitter_never_speeds_the_pipeline_up_and_is_deterministic() {
        let (chain, platform, alloc) = setup();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        let base = replay_perturbed(
            &chain,
            &platform,
            &alloc,
            &best.pattern,
            40,
            &FaultSpec::zero(),
        );
        let jit = FaultSpec::jitter(0.5, 7);
        let a = replay_perturbed(&chain, &platform, &alloc, &best.pattern, 40, &jit);
        let b = replay_perturbed(&chain, &platform, &alloc, &best.pattern, 40, &jit);
        assert!(
            a.period >= base.period - 1e-9,
            "{} < {}",
            a.period,
            base.period
        );
        // Heavy jitter on a tight schedule must actually slow it down.
        assert!(
            a.period > base.period * 1.05,
            "{} vs {}",
            a.period,
            base.period
        );
        assert_eq!(a.period.to_bits(), b.period.to_bits());
        assert_eq!(a.gpu_peak_bytes, b.gpu_peak_bytes);
    }

    #[test]
    fn bandwidth_degradation_slows_comm_bound_pipelines() {
        // Comm-heavy: 1000 bytes at 1000 B/s → 1 s per transfer.
        let acts = 1_000u64;
        let chain = Chain::new(
            "t",
            acts,
            vec![
                Layer::new("a", 0.5, 0.5, 0, acts),
                Layer::new("b", 0.5, 0.5, 0, acts),
            ],
        )
        .unwrap();
        let platform = Platform::new(2, 1 << 30, 1000.0).unwrap();
        let part = Partition::from_cuts(&[1], 2).unwrap();
        let alloc = Allocation::contiguous(&part, 2).unwrap();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        let base = replay_perturbed(
            &chain,
            &platform,
            &alloc,
            &best.pattern,
            40,
            &FaultSpec::zero(),
        );
        let slow = replay_perturbed(
            &chain,
            &platform,
            &alloc,
            &best.pattern,
            40,
            &FaultSpec::degraded_bandwidth(0.5),
        );
        // The link is the bottleneck here: halving β must inflate the
        // achieved period well beyond the fault-free one.
        assert!(
            slow.period > base.period * 1.3,
            "degraded {} vs base {}",
            slow.period,
            base.period
        );
    }

    #[test]
    fn noise_is_uniform_and_stable() {
        let mut sum = 0.0;
        for i in 0..1000u64 {
            let u = noise(42, i, i / 7);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
        assert_eq!(noise(1, 2, 3).to_bits(), noise(1, 2, 3).to_bits());
    }
}
