//! Quality certification against the exhaustive optimum on tiny
//! instances: the exact enumerator of `madpipe-solver` bounds every
//! heuristic from below.

use proptest::prelude::*;

use madpipe::core::{madpipe_plan, PlannerConfig};
use madpipe::model::{Chain, Layer, Platform};
use madpipe::pipedream::pipedream_plan;
use madpipe::sim::{replay_pattern, replay_perturbed, FaultSpec};
use madpipe::solver::exact_optimum;

fn arb_tiny_chain() -> impl Strategy<Value = Chain> {
    prop::collection::vec((0.2f64..3.0, 0.2f64..3.0, 1u64..5_000), 2..=5).prop_map(|specs| {
        let layers = specs
            .iter()
            .enumerate()
            .map(|(i, &(f, b, a))| Layer::new(format!("l{i}"), f, b, 0, a))
            .collect();
        Chain::new("tiny", 1_000, layers).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No planner beats the exhaustive optimum; MadPipe lands within a
    /// bounded factor of it (its allocation space is restricted to one
    /// special processor, and its DP is discretized).
    #[test]
    fn heuristics_bracket_the_exact_optimum(chain in arb_tiny_chain(), p in 2usize..=3) {
        let platform = Platform::new(p, 1 << 40, 2_000.0).unwrap();
        let exact = exact_optimum(&chain, &platform)
            .expect("roomy memory: something must schedule");

        let madpipe = madpipe_plan(&chain, &platform, &PlannerConfig::default())
            .expect("roomy memory: MadPipe must plan");
        prop_assert!(
            madpipe.period() + 1e-6 >= exact.schedule.period,
            "MadPipe {} beat the 'exact' optimum {} — the reference is broken",
            madpipe.period(),
            exact.schedule.period
        );
        prop_assert!(
            madpipe.period() <= exact.schedule.period * 1.6 + 1e-9,
            "MadPipe {} too far above the optimum {}",
            madpipe.period(),
            exact.schedule.period
        );

        if let Ok(pd) = pipedream_plan(&chain, &platform) {
            prop_assert!(
                pd.period() + 1e-6 >= exact.schedule.period,
                "PipeDream {} beat the exact optimum {}",
                pd.period(),
                exact.schedule.period
            );
            // MadPipe's allocation space is a superset of PipeDream's
            // contiguous space; with the contiguous fallback it should
            // essentially never lose on tiny roomy instances.
            prop_assert!(
                madpipe.period() <= pd.period() * 1.05 + 1e-9,
                "MadPipe {} lost to PipeDream {}",
                madpipe.period(),
                pd.period()
            );
        }
    }

    /// Differential certification invariant: replaying any plan the
    /// planner emits — in the plain event simulator and in the
    /// fault-injection simulator at zero jitter — reproduces the analytic
    /// checker's period and per-GPU peak memory, the peaks bit-for-bit.
    #[test]
    fn replay_matches_the_analytic_checker(chain in arb_tiny_chain(), p in 2usize..=3) {
        let platform = Platform::new(p, 1 << 40, 2_000.0).unwrap();
        let plan = madpipe_plan(&chain, &platform, &PlannerConfig::default())
            .expect("roomy memory: MadPipe must plan");
        let analytic = &plan.schedule.report;

        for (label, sim) in [
            ("replay", replay_pattern(&chain, &platform, &plan.allocation, &plan.schedule.pattern, 40)),
            ("perturb(0)", replay_perturbed(&chain, &platform, &plan.allocation, &plan.schedule.pattern, 40, &FaultSpec::zero())),
        ] {
            prop_assert!(
                (sim.period - analytic.period).abs() <= 1e-9 * analytic.period,
                "{label} period {} != analytic {}",
                sim.period,
                analytic.period
            );
            prop_assert_eq!(
                &sim.gpu_peak_bytes,
                &analytic.gpu_peak_bytes,
                "{} peaks diverge from the checker", label
            );
            prop_assert!(!sim.memory_violation);
        }
    }
}
