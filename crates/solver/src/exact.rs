//! Exhaustive reference optimum for tiny instances.
//!
//! Enumerates *every* allocation — all contiguous partitions of the
//! chain crossed with all stage→GPU assignments (canonicalized under GPU
//! relabeling) — and schedules each with the branch-and-bound placer at
//! a high node budget. On instances this small the placer's per-gap
//! candidate enumeration covers all *active* schedules (every operation
//! starts at its dependency-ready time or at the end of another op on
//! its resource), so the result is the true optimum over periodic
//! patterns of that form. Used by the test suites to certify the quality
//! of MadPipe, PipeDream and the heuristics; exponential — keep
//! `chain.len() ≤ ~7` and `n_gpus ≤ 3`.

use madpipe_model::{Allocation, Chain, Partition, Platform, Stage};

use crate::place::PlaceConfig;
use crate::search::{best_period, SolvedSchedule};

/// The best allocation + schedule found by exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExactOptimum {
    /// The optimal allocation.
    pub allocation: Allocation,
    /// Its schedule.
    pub schedule: SolvedSchedule,
    /// Number of allocations enumerated (after symmetry reduction).
    pub explored: usize,
}

/// Enumerate every allocation of `chain` onto the platform's GPUs and
/// return the minimum-period schedulable one. `None` if nothing fits in
/// memory.
pub fn exact_optimum(chain: &Chain, platform: &Platform) -> Option<ExactOptimum> {
    let l = chain.len();
    let p = platform.n_gpus;
    let cfg = PlaceConfig {
        node_budget: 1 << 16,
        max_alternatives: 8,
        compaction: true,
    };

    let mut best: Option<ExactOptimum> = None;
    let mut explored = 0usize;
    for stages in 1..=l {
        for partition in Partition::enumerate(l, stages) {
            for assignment in canonical_assignments(stages, p) {
                explored += 1;
                let alloc = Allocation::new(
                    partition
                        .stages()
                        .iter()
                        .zip(&assignment)
                        .map(|(range, &gpu)| Stage {
                            layers: range.clone(),
                            gpu,
                        })
                        .collect(),
                    l,
                    p,
                )
                .expect("enumerated allocations are well-formed");
                // Prune: the load bound alone already beats the incumbent.
                if let Some(b) = &best {
                    if alloc.load_bound(chain, platform) >= b.schedule.period {
                        continue;
                    }
                }
                if let Ok(schedule) = best_period(chain, platform, &alloc, &cfg) {
                    let better = best
                        .as_ref()
                        .is_none_or(|b| schedule.period < b.schedule.period);
                    if better {
                        best = Some(ExactOptimum {
                            allocation: alloc,
                            schedule,
                            explored,
                        });
                    }
                }
            }
        }
    }
    best.map(|mut b| {
        b.explored = explored;
        b
    })
}

/// All stage→GPU assignments canonical under GPU relabeling: GPU indices
/// appear in first-use order (assignment `i` may only use GPUs
/// `0..=max_used+1`).
fn canonical_assignments(stages: usize, gpus: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(stages);
    // `used` = number of distinct GPUs referenced so far; the next stage
    // may reuse any of them or open GPU `used` (if one remains).
    fn rec(
        stages: usize,
        gpus: usize,
        used: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == stages {
            out.push(current.clone());
            return;
        }
        let limit = used.min(gpus - 1);
        for g in 0..=limit {
            current.push(g);
            rec(stages, gpus, used.max(g + 1), current, out);
            current.pop();
        }
    }
    rec(stages, gpus, 0, &mut current, &mut out);
    // The first stage is always on GPU 0 by canonicalization; ensure the
    // recursion produced exactly that.
    debug_assert!(out.iter().all(|a| a[0] == 0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(costs: &[(f64, f64)], act: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, 0, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn canonical_assignments_count() {
        // 3 stages on 2 GPUs: 0-00,0-01,0-10,0-11 → 4 canonical maps.
        assert_eq!(canonical_assignments(3, 2).len(), 4);
        // 1 stage: only [0].
        assert_eq!(canonical_assignments(1, 5), vec![vec![0]]);
        // Bell-like growth capped by GPU count.
        assert_eq!(canonical_assignments(3, 3).len(), 5);
    }

    #[test]
    fn finds_the_interleaved_optimum() {
        // Loads 4, 8, 4: optimal on 2 GPUs is {0,2} vs {1} at period ≈ 8.
        let c = chain(&[(2.0, 2.0), (4.0, 4.0), (2.0, 2.0)], 1);
        let platform = Platform::new(2, 1 << 30, 1e9).unwrap();
        let opt = exact_optimum(&c, &platform).unwrap();
        assert!(opt.schedule.period < 8.5, "period {}", opt.schedule.period);
        let gpus: Vec<usize> = opt.allocation.stages().iter().map(|s| s.gpu).collect();
        assert_eq!(gpus[0], gpus[2]);
        assert_ne!(gpus[0], gpus[1]);
    }

    #[test]
    fn memory_hopeless_instances_return_none() {
        let c = chain(&[(1.0, 1.0)], 1 << 30);
        let platform = Platform::new(2, 1 << 10, 1e9).unwrap();
        assert!(exact_optimum(&c, &platform).is_none());
    }

    #[test]
    fn single_layer_single_gpu() {
        let c = chain(&[(1.0, 2.0)], 8);
        let platform = Platform::new(1, 1 << 20, 1e9).unwrap();
        let opt = exact_optimum(&c, &platform).unwrap();
        assert!((opt.schedule.period - 3.0).abs() < 1e-9);
        assert_eq!(opt.explored, 1);
    }
}
