//! Shared model types for the MadPipe reproduction.
//!
//! This crate defines the *input model* used by every algorithm in the
//! workspace: a linearized DNN ([`Chain`] of [`Layer`]s), the execution
//! [`Platform`] (`P` GPUs with memory capacity `M` and pairwise links of
//! bandwidth `β`), and the combinatorial objects the algorithms exchange —
//! contiguous [`Partition`]s and (possibly non-contiguous) [`Allocation`]s
//! of stages onto GPUs.
//!
//! Conventions (kept uniform across the workspace):
//!
//! * layers are 0-based half-open ranges `[k, l)` over `0..L`, while the
//!   paper uses 1-based inclusive `k..l`; `Chain::activation_in(k)` is the
//!   paper's `a_{k-1}` (with `a_0` = the network input);
//! * durations are `f64` seconds, sizes are `u64` bytes, bandwidth is
//!   `f64` bytes/second;
//! * the memory model follows §3 of the paper: `3·W_l` per hosted layer
//!   (two weight versions + one accumulated gradient), `g · a_{l-1}` for
//!   `g` in-flight activations, and `2·a` of communication buffer on each
//!   side of an inter-GPU cut.

pub mod allocation;
pub mod chain;
pub mod error;
pub mod fault;
pub mod layer;
pub mod partition;
pub mod platform;
pub mod policy;
pub mod units;
pub mod util;

pub use allocation::{Allocation, Stage};
pub use chain::Chain;
pub use error::ModelError;
pub use fault::PlatformFault;
pub use layer::Layer;
pub use partition::Partition;
pub use platform::Platform;
pub use policy::{ActivationPolicy, PolicySpec, RecomputeMode, StagePolicy, WeightPolicy};
pub use units::{Resource, Unit, UnitKind, UnitSequence};
