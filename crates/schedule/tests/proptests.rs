//! Property-based tests of the 1F1B* construction and the optimal-period
//! search, on randomized chains and partitions.

use proptest::prelude::*;

use madpipe_model::{Allocation, Chain, Layer, Partition, Platform, UnitSequence};
use madpipe_schedule::{best_contiguous_period, check_pattern, group_assignment, one_f1b_star};

/// Strategy: a random chain of `2..=10` layers with heterogeneous costs.
fn arb_chain() -> impl Strategy<Value = Chain> {
    prop::collection::vec(
        (
            0.1f64..10.0,  // forward
            0.1f64..10.0,  // backward
            0u64..10_000,  // weights
            1u64..100_000, // activation
        ),
        2..=10,
    )
    .prop_map(|specs| {
        let layers = specs
            .iter()
            .enumerate()
            .map(|(i, &(f, b, w, a))| Layer::new(format!("l{i}"), f, b, w, a))
            .collect();
        Chain::new("random", 5_000, layers).expect("well-formed by construction")
    })
}

/// Strategy: a random contiguous partition of `n` layers into `1..=n`
/// stages, encoded as a bitmask of cut positions.
fn arb_cuts(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(prop::bool::ANY, n - 1).prop_map(|mask| {
        mask.iter()
            .enumerate()
            .filter(|(_, &cut)| cut)
            .map(|(i, _)| i + 1)
            .collect()
    })
}

fn instance() -> impl Strategy<Value = (Chain, Vec<usize>, f64)> {
    arb_chain().prop_flat_map(|chain| {
        let n = chain.len();
        (Just(chain), arb_cuts(n), 1.0f64..1000.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 1F1B* at any period ≥ the load bound yields a pattern accepted by
    /// the exact checker when memory is unconstrained.
    #[test]
    fn one_f1b_star_is_always_valid((chain, cuts, t_scale) in instance()) {
        let part = Partition::from_cuts(&cuts, chain.len()).unwrap();
        let n_gpus = part.len();
        let platform = Platform::new(n_gpus, u64::MAX / 4, 1_000.0).unwrap();
        let alloc = Allocation::contiguous(&part, n_gpus).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        // Periods from the load bound up to beyond the total load.
        let t = seq.max_unit_load().max(seq.total_load() * t_scale / 1000.0);
        let pattern = one_f1b_star(&seq, t);
        let report = check_pattern(&chain, &platform, &alloc, &seq, &pattern)
            .expect("1F1B* must be valid at any feasible period");

        // Stage units store exactly their group index (§4.1).
        let groups = group_assignment(&seq, t);
        for (u, unit) in seq.units().iter().enumerate() {
            if !unit.is_comm() {
                prop_assert_eq!(
                    report.unit_live_batches[u],
                    groups[u] as u64,
                    "unit {} group {} live {}",
                    u,
                    groups[u],
                    report.unit_live_batches[u]
                );
            }
        }
    }

    /// Group indices never increase along the chain and group loads never
    /// exceed the period.
    #[test]
    fn groups_are_monotone_and_fit((chain, cuts, _t) in instance()) {
        let part = Partition::from_cuts(&cuts, chain.len()).unwrap();
        let n_gpus = part.len();
        let platform = Platform::new(n_gpus, u64::MAX / 4, 1_000.0).unwrap();
        let alloc = Allocation::contiguous(&part, n_gpus).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let t = seq.max_unit_load();
        let groups = group_assignment(&seq, t);
        for w in groups.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // load of every group ≤ T
        let mut loads = std::collections::HashMap::new();
        for (u, unit) in seq.units().iter().enumerate() {
            *loads.entry(groups[u]).or_insert(0.0) += unit.total_time();
        }
        for (&g, &load) in &loads {
            prop_assert!(load <= t + 1e-6, "group {} load {} > {}", g, load, t);
        }
    }

    /// The optimal-period search returns a valid pattern whose period is
    /// never below the load bound, and a coarse linear scan over the same
    /// candidates never finds a smaller feasible period.
    #[test]
    fn best_period_is_minimal_among_group_breakpoints(
        (chain, cuts, mem_scale) in instance()
    ) {
        let part = Partition::from_cuts(&cuts, chain.len()).unwrap();
        let n_gpus = part.len();
        // Memory between "barely fits one live batch" and "plentiful".
        let single = Allocation::contiguous(&part, n_gpus).unwrap();
        let plenty = Platform::new(n_gpus, u64::MAX / 4, 1_000.0).unwrap();
        let seq = UnitSequence::from_allocation(&chain, &plenty, &single);
        let relaxed = one_f1b_star(&seq, seq.total_load());
        let relaxed_report =
            check_pattern(&chain, &plenty, &single, &seq, &relaxed).unwrap();
        let min_needed = relaxed_report.gpu_peak_bytes.iter().copied().max().unwrap();
        let budget = min_needed + (min_needed as f64 * mem_scale / 500.0) as u64 + 1;
        let platform = Platform::new(n_gpus, budget, 1_000.0).unwrap();

        let best = best_contiguous_period(&chain, &platform, &single)
            .expect("budget covers the single-group schedule");
        prop_assert!(best.period + 1e-9 >= seq.max_unit_load());
        // Linear scan: no strictly smaller feasible period among a dense
        // set of probes below the found optimum.
        let probes = 16;
        for i in 0..probes {
            let t = seq.max_unit_load()
                + (best.period - seq.max_unit_load()) * (i as f64 / probes as f64);
            if t < best.period - 1e-6 {
                let p = one_f1b_star(&seq, t);
                prop_assert!(
                    check_pattern(&chain, &platform, &single, &seq, &p).is_err(),
                    "found feasible period {} below reported optimum {}",
                    t,
                    best.period
                );
            }
        }
    }
}
