//! GPipe-style synchronous pipelining (Huang et al. [9]) — the second
//! baseline of the paper's related work.
//!
//! GPipe splits each mini-batch into `m` micro-batches, pipelines all
//! forward passes through the `S` stages, then all backward passes, and
//! flushes before the weight update. The price is the *bubble*: per
//! mini-batch, the pipeline runs for `(m + S − 1)` micro-slots in each
//! direction instead of `m`, so
//!
//! `T ≈ (m + S − 1)/m · max_s ( U(s) ⊕ communication )`.
//!
//! Because execution is fully synchronous, only **one** weight version
//! (plus the gradient accumulator) is kept — `2W` per layer instead of
//! the `3W` of asynchronous 1F1B — and the paper's weight-staleness
//! machinery disappears. Without activation recomputation a stage holds
//! the activations of all `m` in-flight micro-batches (the same bytes as
//! one full mini-batch); with recomputation (GPipe's default) it holds
//! only the `m` stage-input tensors plus one micro-batch of internals,
//! paying the forward time again during backward.

use madpipe_model::{Chain, Partition, Platform};

/// GPipe scheduling parameters.
#[derive(Debug, Clone, Copy)]
pub struct GPipeConfig {
    /// Micro-batches per mini-batch (GPipe recommends `m ≥ 4·S`; `None`
    /// picks `4·S` automatically).
    pub micro_batches: Option<usize>,
    /// Recompute activations in the backward pass (GPipe's default).
    pub recompute: bool,
}

impl Default for GPipeConfig {
    fn default() -> Self {
        Self {
            micro_batches: None,
            recompute: true,
        }
    }
}

/// A GPipe plan: partition, micro-batch count, period and memory.
#[derive(Debug, Clone)]
pub struct GPipePlan {
    /// The contiguous partition (stage `i` on GPU `i`).
    pub partition: Partition,
    /// Micro-batches per mini-batch.
    pub micro_batches: usize,
    /// Whether activations are recomputed.
    pub recompute: bool,
    /// Seconds per mini-batch (including the pipeline flush bubble).
    pub period: f64,
    /// Peak memory per GPU in bytes.
    pub gpu_peak_bytes: Vec<u64>,
}

impl GPipePlan {
    /// Bubble fraction: share of the period lost to the flush.
    pub fn bubble_fraction(&self) -> f64 {
        let s = self.partition.len() as f64;
        let m = self.micro_batches as f64;
        (s - 1.0) / (m + s - 1.0)
    }
}

/// Period of one partition under GPipe's schedule.
fn gpipe_period(
    chain: &Chain,
    platform: &Platform,
    partition: &Partition,
    m: usize,
    recompute: bool,
) -> f64 {
    let s = partition.len();
    // Bottleneck micro-slot: the busiest resource per micro-batch —
    // stage compute (forward + backward [+ recompute]) or link time.
    let mut slot: f64 = 0.0;
    for (i, range) in partition.stages().iter().enumerate() {
        let mut t = chain.compute_time(range.clone());
        if recompute {
            t += chain.forward_time(range.clone());
        }
        slot = slot.max(t / m as f64);
        if i + 1 < s {
            let cut = partition.stages()[i + 1].start;
            slot = slot.max(platform.cut_time(chain, cut) / m as f64);
        }
    }
    (m + s - 1) as f64 * slot
}

/// Peak memory per GPU of one partition under GPipe's schedule.
fn gpipe_memory(chain: &Chain, partition: &Partition, m: usize, recompute: bool) -> Vec<u64> {
    let s = partition.len();
    partition
        .stages()
        .iter()
        .enumerate()
        .map(|(i, range)| {
            // Synchronous training: one weight version + one gradient.
            let weights = 2 * chain.weight_bytes(range.clone());
            let activations = if recompute {
                // m stage-input micro-tensors (= one mini-batch worth of
                // the boundary tensor) + one micro-batch of the recompute
                // working set ā − a_in. The boundary input's own 1/m
                // share lives in the stashed tensors already — counting
                // ā/m here would double-charge it.
                chain.activation_in(range.start)
                    + chain.recompute_working_set_bytes(range.clone()) / m as u64
            } else {
                // All m micro-batches of every internal activation —
                // exactly one mini-batch worth.
                chain.stored_activation_bytes(range.clone())
            };
            let mut buffers = 0;
            if range.start > 0 {
                buffers += 2 * chain.activation_in(range.start) / m as u64;
            }
            if i + 1 < s {
                buffers += 2 * chain.activation_out(range.end - 1) / m as u64;
            }
            weights + activations + buffers
        })
        .collect()
}

/// Plan with GPipe: balance a contiguous partition (same DP as
/// PipeDream's, bottleneck objective with GPipe's memory estimate baked
/// in by filtering), then apply the synchronous schedule.
///
/// Returns `None` when no partition fits in memory.
pub fn gpipe_plan(chain: &Chain, platform: &Platform, cfg: &GPipeConfig) -> Option<GPipePlan> {
    let max_stages = platform.n_gpus.min(chain.len());
    let mut best: Option<GPipePlan> = None;
    for s in 1..=max_stages {
        let m = cfg.micro_batches.unwrap_or(4 * s).max(1);
        // Balanced split into exactly `s` stages via binary search on the
        // bottleneck (classic chain partitioning).
        let Some(partition) = balanced_partition(chain, platform, s) else {
            continue;
        };
        let memory = gpipe_memory(chain, &partition, m, cfg.recompute);
        if memory.iter().any(|&b| b > platform.memory_bytes) {
            continue;
        }
        let period = gpipe_period(chain, platform, &partition, m, cfg.recompute);
        if best.as_ref().is_none_or(|b| period < b.period) {
            best = Some(GPipePlan {
                partition,
                micro_batches: m,
                recompute: cfg.recompute,
                period,
                gpu_peak_bytes: memory,
            });
        }
    }
    best
}

/// Minimize the max stage compute over contiguous splits into exactly
/// `s` stages (no memory constraint here; the caller filters).
fn balanced_partition(chain: &Chain, platform: &Platform, s: usize) -> Option<Partition> {
    let l = chain.len();
    if s > l {
        return None;
    }
    // DP over (first stage end, stages remaining), identical recurrence
    // to PipeDream's but without the memory estimate.
    let inf = f64::INFINITY;
    let mut d = vec![vec![inf; l + 1]; s + 1];
    let mut choice = vec![vec![usize::MAX; l + 1]; s + 1];
    for k in 0..l {
        d[1][k] = chain.compute_time(k..l);
        choice[1][k] = l;
    }
    for p in 2..=s {
        for k in 0..l {
            for e in (k + 1)..=(l - (p - 1)) {
                let rest = d[p - 1][e];
                if rest.is_infinite() {
                    continue;
                }
                let bottleneck = chain
                    .compute_time(k..e)
                    .max(platform.cut_time(chain, e))
                    .max(rest);
                if bottleneck < d[p][k] {
                    d[p][k] = bottleneck;
                    choice[p][k] = e;
                }
            }
        }
    }
    if d[s][0].is_infinite() {
        return None;
    }
    let mut cuts = Vec::new();
    let (mut k, mut p) = (0, s);
    while p > 0 {
        let e = choice[p][k];
        if e < l {
            cuts.push(e);
        }
        k = e;
        p -= 1;
    }
    Partition::from_cuts(&cuts, l).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::Layer;

    fn chain(n: usize, act: u64, w: u64) -> Chain {
        let layers = (0..n)
            .map(|i| Layer::new(format!("l{i}"), 1.0, 2.0, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    #[test]
    fn bubble_shrinks_with_more_micro_batches() {
        let c = chain(8, 16, 0);
        let platform = Platform::new(4, 1 << 30, 1e9).unwrap();
        let few = gpipe_plan(
            &c,
            &platform,
            &GPipeConfig {
                micro_batches: Some(4),
                recompute: false,
            },
        )
        .unwrap();
        let many = gpipe_plan(
            &c,
            &platform,
            &GPipeConfig {
                micro_batches: Some(32),
                recompute: false,
            },
        )
        .unwrap();
        assert!(many.period < few.period);
        assert!(many.bubble_fraction() < few.bubble_fraction());
    }

    #[test]
    fn recompute_trades_memory_for_time() {
        let c = chain(8, 1 << 20, 0);
        let platform = Platform::new(4, 1 << 40, 1e9).unwrap();
        let cfg = GPipeConfig {
            micro_batches: Some(8),
            recompute: false,
        };
        let plain = gpipe_plan(&c, &platform, &cfg).unwrap();
        let recomputed = gpipe_plan(
            &c,
            &platform,
            &GPipeConfig {
                recompute: true,
                ..cfg
            },
        )
        .unwrap();
        assert!(
            recomputed.period > plain.period,
            "recompute adds forward time"
        );
        assert!(
            recomputed.gpu_peak_bytes.iter().max() < plain.gpu_peak_bytes.iter().max(),
            "recompute must reduce peak memory"
        );
    }

    #[test]
    fn synchronous_weights_cost_two_copies() {
        let c = chain(2, 4, 1000);
        let platform = Platform::new(1, 1 << 30, 1e9).unwrap();
        let plan = gpipe_plan(
            &c,
            &platform,
            &GPipeConfig {
                micro_batches: Some(1),
                recompute: false,
            },
        )
        .unwrap();
        // single GPU: 2·(2·1000) weights + activations + no buffers
        assert_eq!(
            plan.gpu_peak_bytes[0],
            4000 + c.stored_activation_bytes(0..2)
        );
    }

    #[test]
    fn recompute_memory_matches_the_lifted_model() {
        use madpipe_model::{ActivationPolicy, StagePolicy, WeightPolicy};
        // Differential pin: GPipe's recompute activation bytes must equal
        // the model-crate formulation — one mini-batch of the boundary
        // input (the per-live-batch pin, stashed as m micro-tensors) plus
        // 1/m of the recompute working set ā − a_in. The historic
        // `a_in + ā/m` double-counted the boundary input's 1/m share.
        let c = chain(8, 1 << 20, 64);
        let rec = StagePolicy {
            activation: ActivationPolicy::Recompute,
            weights: WeightPolicy::TwoBw,
        };
        for s in [1usize, 2, 4] {
            let platform = Platform::new(4, 1 << 40, 1e9).unwrap();
            let part = balanced_partition(&c, &platform, s).unwrap();
            for m in [1usize, 4, 8] {
                let mem = gpipe_memory(&c, &part, m, true);
                for (i, range) in part.stages().iter().enumerate() {
                    let weights = 2 * c.weight_bytes(range.clone());
                    let expect_act = c.stage_live_batch_bytes(range.clone(), rec)
                        + c.recompute_working_set_bytes(range.clone()) / m as u64;
                    let mut buffers = 0;
                    if range.start > 0 {
                        buffers += 2 * c.activation_in(range.start) / m as u64;
                    }
                    if i + 1 < s {
                        buffers += 2 * c.activation_out(range.end - 1) / m as u64;
                    }
                    assert_eq!(mem[i], weights + expect_act + buffers, "s={s} m={m} i={i}");
                }
            }
        }
    }

    #[test]
    fn recompute_at_one_micro_batch_stores_exactly_one_batch() {
        // At m = 1 the recompute peak equals the store peak: stashing the
        // boundary input and regenerating ā − a_in is the same bytes as
        // storing ā outright. The pre-fix formula was a_in larger.
        let c = chain(6, 1 << 16, 128);
        let platform = Platform::new(3, 1 << 40, 1e9).unwrap();
        let part = balanced_partition(&c, &platform, 3).unwrap();
        assert_eq!(
            gpipe_memory(&c, &part, 1, true),
            gpipe_memory(&c, &part, 1, false)
        );
    }

    #[test]
    fn infeasible_memory_returns_none() {
        let c = chain(4, 1 << 20, 1 << 20);
        let platform = Platform::new(2, 1 << 10, 1e9).unwrap();
        assert!(gpipe_plan(&c, &platform, &GPipeConfig::default()).is_none());
    }

    #[test]
    fn default_micro_batch_count_follows_stage_count() {
        let c = chain(8, 16, 0);
        let platform = Platform::new(4, 1 << 40, 1e9).unwrap();
        let plan = gpipe_plan(&c, &platform, &GPipeConfig::default()).unwrap();
        assert_eq!(plan.micro_batches, 4 * plan.partition.len());
    }

    #[test]
    fn balanced_partition_is_balanced() {
        let c = chain(8, 1, 0);
        let platform = Platform::new(4, 1 << 40, 1e12).unwrap();
        let part = balanced_partition(&c, &platform, 4).unwrap();
        assert_eq!(part.len(), 4);
        for s in part.stages() {
            assert_eq!(s.len(), 2);
        }
    }
}
