//! End-to-end tests of the planning daemon: concurrent clients, cache
//! hits bit-identical to solo planning, malformed-request survival, and
//! graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_json::{ToJson, Value};
use madpipe_model::{Chain, Layer, Platform};
use madpipe_serve::{ServeConfig, Server};

/// A small deterministic instance family: same shape, seed-dependent
/// timings, fast enough to plan many times in a test.
fn instance(seed: u64) -> (Chain, Platform) {
    let layers = (0..6)
        .map(|i| {
            let x = ((seed * 37 + i * 11) % 17 + 1) as f64;
            Layer::new(
                format!("l{i}"),
                1e-3 * x,
                2e-3 * x,
                1 << 20,
                (4 + (i + seed) % 4) << 20,
            )
        })
        .collect();
    let chain = Chain::new(format!("net{seed}"), 1 << 20, layers).unwrap();
    let platform = Platform::gb(4, 2, 12.0).unwrap();
    (chain, platform)
}

fn plan_line(chain: &Chain, platform: &Platform) -> String {
    Value::Object(vec![
        ("cmd".into(), Value::Str("plan".into())),
        ("chain".into(), chain.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
            ]),
        ),
    ])
    .to_string_compact()
}

/// One round trip on a fresh connection.
fn roundtrip(addr: std::net::SocketAddr, line: &str) -> Value {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Value::parse(response.trim()).expect("response is JSON")
}

fn start_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_entries: 64,
        timeout: Duration::from_secs(60),
        queue_depth: 64,
        panic_marker: None,
        ..ServeConfig::default()
    })
    .expect("bind")
}

fn counter(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn concurrent_clients_get_plans_bit_identical_to_solo_planning() {
    let server = start_server();
    let addr = server.local_addr();

    // 3 distinct instances over 8 concurrent clients; every client
    // checks its responses against an in-process plan of the same
    // instance, down to the f64 bits of the period.
    let instances: Vec<(Chain, Platform)> = (0..3).map(instance).collect();
    let expected: Vec<f64> = instances
        .iter()
        .map(|(c, p)| {
            madpipe_plan(c, p, &PlannerConfig::default())
                .expect("solo plan")
                .period()
        })
        .collect();

    std::thread::scope(|scope| {
        for client in 0..8usize {
            let instances = &instances;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3usize {
                    let which = (client + round) % instances.len();
                    let (chain, platform) = &instances[which];
                    let v = roundtrip(addr, &plan_line(chain, platform));
                    assert_eq!(
                        v.field("ok").unwrap(),
                        &Value::Bool(true),
                        "client {client} round {round}: {}",
                        v.to_string_compact()
                    );
                    let period = v
                        .field("plan")
                        .unwrap()
                        .field("period")
                        .unwrap()
                        .as_f64()
                        .unwrap();
                    assert_eq!(
                        period.to_bits(),
                        expected[which].to_bits(),
                        "served plan must be bit-identical to solo planning"
                    );
                }
            });
        }
    });

    // 8 clients × 3 rounds over 3 instances: at most one miss per
    // distinct instance can *compute* fresh work per worker, everything
    // else must be a hit somewhere. Verify through the counters.
    let metrics = roundtrip(addr, r#"{"cmd":"metrics"}"#);
    let text = metrics
        .field("metrics")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    let hits = counter(&text, "madpipe_serve_cache_hits");
    let misses = counter(&text, "madpipe_serve_cache_misses");
    let plan_requests = counter(&text, "madpipe_serve_requests_plan");
    assert_eq!(plan_requests, 24);
    assert_eq!(hits + misses, plan_requests, "every request hits or misses");
    assert!(misses >= 3, "each distinct instance misses at least once");
    assert!(hits > 0, "repeats must be served from cache");

    server.shutdown();
    server.join();
}

#[test]
fn repeat_requests_are_counter_verified_cache_hits() {
    let server = start_server();
    let addr = server.local_addr();
    let (chain, platform) = instance(9);
    let line = plan_line(&chain, &platform);

    let first = roundtrip(addr, &line);
    assert_eq!(first.field("cached").unwrap(), &Value::Bool(false));
    let second = roundtrip(addr, &line);
    assert_eq!(second.field("cached").unwrap(), &Value::Bool(true));
    assert_eq!(
        first.field("plan").unwrap().to_string_compact(),
        second.field("plan").unwrap().to_string_compact(),
        "cached response must be byte-identical"
    );
    assert_eq!(server.registry().counter("serve.cache.hits"), 1);
    assert_eq!(server.registry().counter("serve.cache.misses"), 1);

    // The same instance in GiB units and different key order is the
    // same canonical instance → another hit.
    let gib = (1u64 << 30) as f64;
    let alt = line.replace(
        &format!(
            r#""n_gpus":4,"memory_bytes":{},"bandwidth_bytes":{}"#,
            platform.memory_bytes,
            Value::Float(platform.bandwidth).to_string_compact()
        ),
        &format!(
            r#""bandwidth_gb":{},"memory_gb":2.0,"n_gpus":4"#,
            Value::Float(platform.bandwidth / gib).to_string_compact()
        ),
    );
    assert_ne!(alt, line, "replacement must apply");
    let third = roundtrip(addr, &alt);
    assert_eq!(
        third.field("cached").unwrap(),
        &Value::Bool(true),
        "unit-normalized request must hit: {}",
        third.to_string_compact()
    );
    assert_eq!(server.registry().counter("serve.cache.hits"), 2);

    server.shutdown();
    server.join();
}

#[test]
fn malformed_and_invalid_requests_never_kill_the_server() {
    let server = start_server();
    let addr = server.local_addr();

    // Garbage, unknown command, missing fields: structured errors.
    for (line, kind) in [
        ("this is not json", "malformed"),
        (r#"{"cmd":"explode"}"#, "malformed"),
        (r#"{"cmd":"plan"}"#, "malformed"),
    ] {
        let v = roundtrip(addr, line);
        assert_eq!(v.field("ok").unwrap(), &Value::Bool(false), "{line}");
        assert_eq!(
            v.field("error").unwrap().field("kind").unwrap().as_str(),
            Ok(kind),
            "{line}"
        );
    }

    // A NaN cannot be written in JSON, but 1e999 parses to +inf — the
    // validation layer must reject it with a descriptive message.
    let (chain, platform) = instance(1);
    let inf_line =
        plan_line(&chain, &platform).replace("\"forward_time\":", "\"forward_time\":1e999,\"x\":");
    let v = roundtrip(addr, &inf_line);
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(false));
    let err = v.field("error").unwrap();
    assert_eq!(err.field("kind").unwrap().as_str(), Ok("invalid"));
    let msg = err.field("message").unwrap().as_str().unwrap();
    assert!(msg.contains("finite"), "descriptive error, got: {msg}");

    // Negative timing straight from JSON.
    let neg_line =
        plan_line(&chain, &platform).replacen("\"backward_time\":", "\"backward_time\":-", 1);
    let v = roundtrip(addr, &neg_line);
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(false));

    // Several bad lines then a good one on a single connection — the
    // connection and the server both survive.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let good = plan_line(&chain, &platform);
    stream
        .write_all(format!("garbage\n\n{{\"cmd\":\"nope\"}}\n{good}\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        lines.push(Value::parse(l.trim()).unwrap());
    }
    assert_eq!(lines[0].field("ok").unwrap(), &Value::Bool(false));
    assert_eq!(lines[1].field("ok").unwrap(), &Value::Bool(false));
    assert_eq!(
        lines[2].field("ok").unwrap(),
        &Value::Bool(true),
        "good request after garbage must still be served"
    );

    assert!(server.registry().counter("serve.errors.malformed") >= 3);
    assert!(server.registry().counter("serve.errors.invalid") >= 2);

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_request_drains_gracefully() {
    let server = start_server();
    let addr = server.local_addr();
    let (chain, platform) = instance(2);

    // In-flight request completes, then drain.
    let v = roundtrip(addr, &plan_line(&chain, &platform));
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));

    let ack = roundtrip(addr, r#"{"cmd":"shutdown"}"#);
    assert_eq!(ack.field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(ack.field("draining").unwrap(), &Value::Bool(true));
    assert!(server.is_draining());
    // join() returning proves the acceptor, connections and workers all
    // exited; afterwards the port no longer accepts work.
    server.join();
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after drain"
    );
}

#[test]
fn oversized_lines_are_rejected_and_the_connection_survives() {
    let server = start_server();
    let addr = server.local_addr();
    let (chain, platform) = instance(4);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    // Stream > 1 MiB without a newline: the server must reject it while
    // it is still arriving, not buffer it all.
    let junk = vec![b'x'; 600 << 10];
    stream.write_all(&junk).unwrap();
    stream.write_all(&junk).unwrap();
    let mut reader = BufReader::new(stream);
    let mut l = String::new();
    reader.read_line(&mut l).expect("rejection arrives early");
    let v = Value::parse(l.trim()).unwrap();
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(false));
    let err = v.field("error").unwrap();
    assert_eq!(err.field("kind").unwrap().as_str(), Ok("malformed"));
    assert!(err
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("exceeds"));

    // Finish the oversized line, then a good request on the *same*
    // connection: the tail of the junk is discarded, the request served.
    let stream = reader.get_mut();
    stream.write_all(b"tail-of-junk\n").unwrap();
    let good = plan_line(&chain, &platform);
    stream.write_all(format!("{good}\n").as_bytes()).unwrap();
    let mut l = String::new();
    reader.read_line(&mut l).unwrap();
    let v = Value::parse(l.trim()).unwrap();
    assert_eq!(
        v.field("ok").unwrap(),
        &Value::Bool(true),
        "request after oversized line must be served: {}",
        v.to_string_compact()
    );
    assert_eq!(server.registry().counter("serve.errors.oversized"), 1);

    server.shutdown();
    server.join();
}

#[test]
fn health_reports_workers_and_queue() {
    let server = start_server();
    let addr = server.local_addr();
    let v = roundtrip(addr, r#"{"cmd":"health"}"#);
    assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
    let h = v.field("health").unwrap();
    assert_eq!(h.field("draining").unwrap(), &Value::Bool(false));
    assert_eq!(h.field("workers_alive").unwrap(), &Value::UInt(2));
    assert_eq!(h.field("workers_configured").unwrap(), &Value::UInt(2));
    assert_eq!(h.field("queue_depth").unwrap(), &Value::UInt(0));
    assert_eq!(h.field("queue_capacity").unwrap(), &Value::UInt(64));
    assert_eq!(h.field("cached_plans").unwrap(), &Value::UInt(0));
    assert_eq!(h.field("panics").unwrap(), &Value::UInt(0));
    assert_eq!(h.field("respawns").unwrap(), &Value::UInt(0));

    server.shutdown();
    server.join();
}

/// Turn a plan line into a replan line carrying `fault`.
fn replan_line(chain: &Chain, platform: &Platform, fault_json: &str) -> String {
    plan_line(chain, platform).replacen(
        r#""cmd":"plan""#,
        &format!(r#""cmd":"replan","fault":{fault_json}"#),
        1,
    )
}

#[test]
fn replan_matches_offline_planning_and_unifies_with_the_plan_cache() {
    let server = start_server();
    let addr = server.local_addr();
    let (chain, platform) = instance(5);

    let v = roundtrip(
        addr,
        &replan_line(&chain, &platform, r#"{"kind":"gpu_loss","count":1}"#),
    );
    assert_eq!(
        v.field("ok").unwrap(),
        &Value::Bool(true),
        "{}",
        v.to_string_compact()
    );
    let served = v
        .field("plan")
        .unwrap()
        .field("period")
        .unwrap()
        .as_f64()
        .unwrap();

    // The degraded plan must be bit-identical to offline planning on the
    // surviving platform.
    let survivor = Platform::new(3, platform.memory_bytes, platform.bandwidth).unwrap();
    let offline = madpipe_plan(&chain, &survivor, &PlannerConfig::default()).unwrap();
    assert_eq!(served.to_bits(), offline.period().to_bits());

    // The replan object reports the fault and a non-positive delta.
    let replan = v.field("replan").unwrap();
    assert_eq!(
        replan
            .field("fault")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str(),
        Ok("gpu_loss")
    );
    assert_eq!(
        replan.field("platform").unwrap().field("n_gpus").unwrap(),
        &Value::UInt(3)
    );
    let delta = replan.field("throughput_delta").unwrap().as_f64().unwrap();
    assert!(delta <= 1e-12, "GPU loss raised throughput by {delta}");

    // Cache unification, both directions: the replan left the baseline
    // AND the survivor in the cache, so a direct plan of either is a
    // hit; and a second replan is answered fully from cache.
    let direct = roundtrip(addr, &plan_line(&chain, &survivor));
    assert_eq!(
        direct.field("cached").unwrap(),
        &Value::Bool(true),
        "direct plan of the survivor must hit the replan-derived entry"
    );
    let direct_base = roundtrip(addr, &plan_line(&chain, &platform));
    assert_eq!(direct_base.field("cached").unwrap(), &Value::Bool(true));
    let again = roundtrip(
        addr,
        &replan_line(&chain, &platform, r#"{"kind":"gpu_loss","count":1}"#),
    );
    assert_eq!(again.field("cached").unwrap(), &Value::Bool(true));
    assert_eq!(
        again
            .field("replan")
            .unwrap()
            .field("baseline")
            .unwrap()
            .field("cached")
            .unwrap(),
        &Value::Bool(true)
    );
    assert_eq!(server.registry().counter("serve.requests.replan"), 2);
    assert_eq!(server.registry().counter("replan.fault.gpu_loss"), 2);

    // An inapplicable fault is a structured `invalid`, not a crash.
    let lethal = roundtrip(
        addr,
        &replan_line(&chain, &platform, r#"{"kind":"gpu_loss","count":4}"#),
    );
    assert_eq!(lethal.field("ok").unwrap(), &Value::Bool(false));
    assert_eq!(
        lethal
            .field("error")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str(),
        Ok("invalid")
    );

    server.shutdown();
    server.join();
}

#[test]
fn ping_and_metrics_commands() {
    let server = start_server();
    let addr = server.local_addr();
    let pong = roundtrip(addr, r#"{"cmd":"ping"}"#);
    assert_eq!(pong.field("pong").unwrap(), &Value::Bool(true));
    let metrics = roundtrip(addr, r#"{"cmd":"metrics"}"#);
    let text = metrics.field("metrics").unwrap().as_str().unwrap();
    assert!(
        text.contains("madpipe_serve_requests"),
        "prometheus dump must include serve counters: {text}"
    );
    server.shutdown();
    server.join();
}

/// Regression: the worker must build its probe session under the
/// request's policy spec. A default-built session refuses non-default
/// requests with `PolicyMismatch`, which used to surface as a `plan`
/// error for every `--recompute`/`--weights` request over the wire.
#[test]
fn policy_requests_plan_and_match_solo_planning() {
    use madpipe_model::{PolicySpec, RecomputeMode, WeightPolicy};

    let server = start_server();
    let addr = server.local_addr();
    let (chain, platform) = instance(1);

    let policy = PolicySpec {
        recompute: RecomputeMode::Always,
        weights: WeightPolicy::TwoBw,
    };
    let cfg = PlannerConfig {
        policy,
        ..PlannerConfig::default()
    };
    let expected = madpipe_plan(&chain, &platform, &cfg).expect("solo policy plan");

    let mut line = plan_line(&chain, &platform);
    line.truncate(line.len() - 1); // drop the closing `}`
    line.push_str(r#", "config": {"recompute": "always", "weights": "2bw"}}"#);
    let v = roundtrip(addr, &line);
    assert_eq!(
        v.field("ok").unwrap(),
        &Value::Bool(true),
        "policy plan failed: {}",
        v.to_string_compact()
    );
    let plan = v.field("plan").unwrap();
    let period = plan.field("period").unwrap().as_f64().unwrap();
    assert_eq!(
        period.to_bits(),
        expected.period().to_bits(),
        "served policy plan must be bit-identical to solo planning"
    );
    // Per-stage policies ride the wire.
    for stage in plan.field("stages").unwrap().as_array().unwrap() {
        assert_eq!(stage.field("activation").unwrap().as_str(), Ok("recompute"));
        assert_eq!(stage.field("weights").unwrap().as_str(), Ok("2bw"));
    }
    // The same instance under the default policy is a different cache
    // entry with a different (or absent) plan — never an alias.
    let default = roundtrip(addr, &plan_line(&chain, &platform));
    if default.field("ok").unwrap() == &Value::Bool(true) {
        let p = default
            .field("plan")
            .unwrap()
            .field("period")
            .unwrap()
            .as_f64()
            .unwrap();
        let solo = madpipe_plan(&chain, &platform, &PlannerConfig::default())
            .expect("solo default plan")
            .period();
        assert_eq!(p.to_bits(), solo.to_bits());
    }
    server.shutdown();
    server.join();
}
