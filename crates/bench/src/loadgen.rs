//! Closed-loop load generator for `madpipe serve`.
//!
//! N connections each fire M requests back-to-back (send, wait for the
//! response, send the next) over a deterministic pool of mixed
//! instances, and the report aggregates p50/p99 latency, error counts
//! and the cache hit rate observed in the responses. A closed loop
//! measures the service time distribution without coordinated omission
//! — every request's latency is recorded, including the ones that queue.
//!
//! Transient transport failures — a refused/reset connect, a connection
//! the server closed mid-exchange — are retried on a fresh connection
//! with capped, deterministically jittered backoff ([`LoadgenConfig::
//! max_retries`]); the report counts the retries it took. Structured
//! protocol errors (`ok:false`) are *not* retried: the server answered,
//! and a closed loop that resends rejected work measures nothing.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use madpipe_json::{ToJson, Value};
use madpipe_model::Platform;

const GIB: u64 = 1 << 30;

/// Load profile.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4835`.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_conn: usize,
    /// Distinct instances in the request mix.
    pub instances: usize,
    /// Seed of the instance pool.
    pub seed: u64,
    /// Per-response read timeout.
    pub timeout: Duration,
    /// Reconnect attempts per request on transient transport failures
    /// (connect refused, server closed the connection). 0 fails fast.
    pub max_retries: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4835".into(),
            connections: 4,
            requests_per_conn: 16,
            instances: 4,
            seed: 42,
            timeout: Duration::from_secs(60),
            max_retries: 3,
        }
    }
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    pub total: usize,
    pub ok: usize,
    pub errors: usize,
    pub cached: usize,
    /// Reconnect-and-resend attempts taken across all connections.
    pub retries: usize,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Wall clock of the whole run, backoff sleeps included.
    pub elapsed_seconds: f64,
    /// Time spent *sleeping* in retry backoff, summed over connections.
    /// Reported separately so transient faults show up as backoff, not
    /// as deflated throughput.
    pub backoff_seconds: f64,
    /// Request-loop wall clock: the busiest connection's loop time minus
    /// its own backoff sleeps — the denominator of [`throughput`].
    ///
    /// [`throughput`]: LoadgenReport::throughput
    pub request_seconds: f64,
}

impl LoadgenReport {
    /// Fraction of successful responses served from the plan cache.
    pub fn hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.cached as f64 / self.ok as f64
        }
    }

    /// Completed requests per second of request-loop time. Backoff
    /// sleeps are excluded — they measure the fault injector (or the
    /// network), not the server; the run's total wall clock (sleeps
    /// included) stays visible in `elapsed_seconds`.
    pub fn throughput(&self) -> f64 {
        if self.request_seconds > 0.0 {
            self.total as f64 / self.request_seconds
        } else {
            0.0
        }
    }
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests  : {} total, {} ok, {} errors, {} retries",
            self.total, self.ok, self.errors, self.retries
        )?;
        writeln!(
            f,
            "latency   : p50 {:.2} ms, p99 {:.2} ms",
            self.p50_ms, self.p99_ms
        )?;
        writeln!(
            f,
            "cache     : {} cached responses ({:.0}% hit rate)",
            self.cached,
            100.0 * self.hit_rate()
        )?;
        write!(
            f,
            "throughput: {:.1} req/s over {:.2} s of request time \
             ({:.2} s wall, {:.2} s retry backoff)",
            self.throughput(),
            self.request_seconds,
            self.elapsed_seconds,
            self.backoff_seconds
        )
    }
}

/// Deterministic pool of `n` request lines: small random chains (same
/// generator as the experiment harness) on a fixed 4-GPU platform,
/// sized so one plan takes milliseconds, not seconds.
pub fn request_lines(n: usize, seed: u64) -> Vec<String> {
    let platform = Platform::new(4, 2 * GIB, 12.0 * GIB as f64).expect("static platform");
    (0..n.max(1) as u64)
        .map(|i| {
            let cfg = madpipe_dnn::RandomChainConfig {
                layers: 8,
                forward_range: (0.5e-3, 5e-3),
                weight_range: (1 << 16, 1 << 20),
                activation_range: (1 << 20, 8 << 20),
                cnn_profile: false,
            };
            let chain = madpipe_dnn::random_chain(&cfg, seed.wrapping_add(i));
            Value::Object(vec![
                ("cmd".into(), Value::Str("plan".into())),
                ("chain".into(), chain.to_json()),
                (
                    "platform".into(),
                    Value::Object(vec![
                        ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                        ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                        ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
                    ]),
                ),
            ])
            .to_string_compact()
        })
        .collect()
}

/// One request/response exchange on an open connection.
fn exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<Value, String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    if response.is_empty() {
        return Err("server closed the connection".into());
    }
    Value::parse(response.trim()).map_err(|e| format!("bad response JSON: {e}"))
}

/// SplitMix64 finalizer — the jitter source. Deterministic in its seed,
/// so two runs with the same config back off identically.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Backoff before retry `attempt` (1-based): exponential from 10 ms,
/// capped at 200 ms, jittered to 50–150% so retrying connections
/// don't reconnect in lockstep after a mass disconnect.
fn backoff(attempt: usize, jitter_seed: u64) -> Duration {
    let base_ms = (10u64 << (attempt - 1).min(8)).min(200);
    let jitter = 50 + mix(jitter_seed.wrapping_add(attempt as u64)) % 101; // percent
    Duration::from_millis(base_ms * jitter / 100)
}

/// A connected stream plus its buffered read half.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(cfg: &LoadgenConfig) -> Result<Conn, String> {
    let stream = TcpStream::connect(&cfg.addr).map_err(|e| format!("connect: {e}"))?;
    // A closed loop of one-line exchanges would spend its time in
    // Nagle/delayed-ACK stalls otherwise.
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(cfg.timeout))
        .map_err(|e| e.to_string())?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    Ok(Conn { stream, reader })
}

/// One exchange with transient-failure retries. Both the connect and
/// the exchange may fail transiently (the server killed the connection,
/// a worker died mid-drain); each failure burns one retry, backs off
/// and reconnects. Returns the response, how many retries it took, and
/// the total backoff slept — callers subtract the sleeps from their
/// request-loop clock so throughput measures the server, not the
/// backoff schedule.
fn exchange_with_retry(
    cfg: &LoadgenConfig,
    conn: &mut Option<Conn>,
    line: &str,
    jitter_seed: u64,
) -> Result<(Value, usize, Duration), String> {
    let mut retries = 0usize;
    let mut slept = Duration::ZERO;
    loop {
        let attempt: Result<Value, String> = match conn {
            Some(c) => exchange(&mut c.stream, &mut c.reader, line),
            None => match connect(cfg) {
                Ok(c) => {
                    let c = conn.insert(c);
                    exchange(&mut c.stream, &mut c.reader, line)
                }
                Err(e) => Err(e),
            },
        };
        match attempt {
            Ok(v) => return Ok((v, retries, slept)),
            Err(e) => {
                // The connection is in an unknown state; never reuse it.
                *conn = None;
                if retries >= cfg.max_retries {
                    return Err(format!("{e} (after {retries} retries)"));
                }
                retries += 1;
                let pause = backoff(retries, jitter_seed);
                slept += pause;
                std::thread::sleep(pause);
            }
        }
    }
}

/// Per-connection outcome: (latencies in ms, ok count, cached count,
/// retries taken, backoff slept in seconds, loop wall clock in seconds).
type ConnStats = Result<(Vec<f64>, usize, usize, usize, f64, f64), String>;

/// Run the closed loop and aggregate the report.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let lines = request_lines(cfg.instances, cfg.seed);
    let started = Instant::now();
    let per_conn: Vec<ConnStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|conn| {
                let lines = &lines;
                scope.spawn(move || -> ConnStats {
                    let loop_started = Instant::now();
                    let mut open: Option<Conn> = Some(connect(cfg)?);
                    let mut latencies = Vec::with_capacity(cfg.requests_per_conn);
                    let (mut ok, mut cached, mut retries) = (0usize, 0usize, 0usize);
                    let mut slept = Duration::ZERO;
                    for i in 0..cfg.requests_per_conn {
                        let line = &lines[(conn + i) % lines.len()];
                        let jitter_seed = mix(cfg.seed ^ ((conn as u64) << 32) ^ i as u64);
                        let t0 = Instant::now();
                        let (v, r, s) = exchange_with_retry(cfg, &mut open, line, jitter_seed)?;
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        retries += r;
                        slept += s;
                        if v.get("ok") == Some(&Value::Bool(true)) {
                            ok += 1;
                            if v.get("cached") == Some(&Value::Bool(true)) {
                                cached += 1;
                            }
                        }
                    }
                    Ok((
                        latencies,
                        ok,
                        cached,
                        retries,
                        slept.as_secs_f64(),
                        loop_started.elapsed().as_secs_f64(),
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let (mut ok, mut cached, mut total, mut retries) = (0usize, 0usize, 0usize, 0usize);
    let (mut backoff_seconds, mut request_seconds) = (0.0f64, 0.0f64);
    for outcome in per_conn {
        let (lat, o, c, r, slept, loop_secs) = outcome?;
        total += lat.len();
        latencies.extend(lat);
        ok += o;
        cached += c;
        retries += r;
        backoff_seconds += slept;
        // The run is as long as its busiest connection's sleep-free loop.
        request_seconds = request_seconds.max(loop_secs - slept);
    }
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    Ok(LoadgenReport {
        total,
        ok,
        errors: total - ok,
        cached,
        retries,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        elapsed_seconds,
        backoff_seconds,
        request_seconds,
    })
}

/// Fetch the server's Prometheus dump via the `metrics` command.
pub fn fetch_metrics(addr: &str, timeout: Duration) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let v = exchange(&mut stream, &mut reader, r#"{"cmd":"metrics"}"#)?;
    v.field("metrics")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .map_err(|e| format!("metrics response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_pool_is_deterministic_and_parseable() {
        let a = request_lines(3, 7);
        let b = request_lines(3, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], a[1], "instances differ");
        for line in &a {
            let v = Value::parse(line).unwrap();
            assert_eq!(v.field("cmd").unwrap().as_str(), Ok("plan"));
            assert!(v.get("chain").is_some() && v.get("platform").is_some());
        }
    }

    #[test]
    fn report_rates() {
        // 10 requests over 2.5 s wall, of which 0.5 s was backoff sleep:
        // throughput uses the 2 s request-loop denominator, not the wall.
        let r = LoadgenReport {
            total: 10,
            ok: 8,
            errors: 2,
            cached: 4,
            retries: 3,
            p50_ms: 1.0,
            p99_ms: 2.0,
            elapsed_seconds: 2.5,
            backoff_seconds: 0.5,
            request_seconds: 2.0,
        };
        assert_eq!(r.hit_rate(), 0.5);
        assert_eq!(r.throughput(), 5.0);
        let text = r.to_string();
        assert!(text.contains("p50 1.00 ms"), "{text}");
        assert!(text.contains("50% hit rate"), "{text}");
        assert!(text.contains("3 retries"), "{text}");
        assert!(text.contains("0.50 s retry backoff"), "{text}");
        assert!(text.contains("2.50 s wall"), "{text}");
    }

    #[test]
    fn throughput_excludes_backoff_sleeps() {
        // Same work, one run with a second of backoff: identical
        // throughput, different wall clock.
        let clean = LoadgenReport {
            total: 100,
            request_seconds: 10.0,
            elapsed_seconds: 10.0,
            ..LoadgenReport::default()
        };
        let faulted = LoadgenReport {
            total: 100,
            retries: 5,
            request_seconds: 10.0,
            elapsed_seconds: 11.0,
            backoff_seconds: 1.0,
            ..LoadgenReport::default()
        };
        assert_eq!(clean.throughput(), faulted.throughput());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        for attempt in 1..=12usize {
            let a = backoff(attempt, 7);
            assert_eq!(a, backoff(attempt, 7), "same seed, same delay");
            // 50–150% of a 10 ms..200 ms exponential window.
            assert!(a >= Duration::from_millis(5), "attempt {attempt}: {a:?}");
            assert!(a <= Duration::from_millis(300), "attempt {attempt}: {a:?}");
        }
        assert_ne!(
            backoff(1, 1),
            backoff(1, 2),
            "different seeds should (here) jitter apart"
        );
    }

    #[test]
    fn transient_eof_is_retried_and_counted() {
        use std::io::BufRead;
        use std::net::TcpListener;

        // A server that kills the first connection mid-request and
        // answers on the second: the loadgen must retry and succeed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first); // EOF before any response
            let (mut second, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(second.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            second
                .write_all(b"{\"ok\":true,\"cached\":false}\n")
                .unwrap();
        });

        let cfg = LoadgenConfig {
            addr: addr.to_string(),
            max_retries: 2,
            timeout: Duration::from_secs(5),
            ..LoadgenConfig::default()
        };
        let mut conn = Some(connect(&cfg).unwrap());
        let (v, retries, slept) =
            exchange_with_retry(&cfg, &mut conn, r#"{"cmd":"ping"}"#, 3).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(retries, 1, "one EOF, one retry");
        assert_eq!(slept, backoff(1, 3), "the one retry's backoff is reported");
        server.join().unwrap();
    }

    #[test]
    fn retries_exhaust_into_an_error() {
        // Nothing listens on this address (bind, learn the port, drop).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = LoadgenConfig {
            addr,
            max_retries: 1,
            timeout: Duration::from_secs(1),
            ..LoadgenConfig::default()
        };
        let mut conn = None;
        let err = exchange_with_retry(&cfg, &mut conn, r#"{"cmd":"ping"}"#, 3).unwrap_err();
        assert!(err.contains("after 1 retries"), "{err}");
    }
}
