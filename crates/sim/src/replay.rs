//! Pattern replay: execute a periodic pattern event by event and measure
//! what it actually does.
//!
//! The analytic checker of `madpipe-schedule` *proves* a pattern valid;
//! replay *observes* it: ops fire at `kT + t` on batch `k − h`, memory
//! moves at op completions, and the report must agree with the checker —
//! which the cross-validation tests in the workspace assert.

use madpipe_model::{Allocation, Chain, Platform, Resource, StagePolicy, UnitKind, UnitSequence};
use madpipe_schedule::check::static_memory;
use madpipe_schedule::{Dir, Pattern};

use crate::event::EventQueue;
use crate::report::SimReport;

/// Replay `pattern` for `periods` periods (plus warm-up) and measure the
/// achieved throughput and per-GPU memory peaks.
///
/// Batches with negative indices (the fill phase of the pipeline) are
/// skipped, so the measurement starts in steady state after `max_shift`
/// periods of warm-up.
pub fn replay_pattern(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    pattern: &Pattern,
    periods: usize,
) -> SimReport {
    let policies = vec![StagePolicy::default(); alloc.stages().len()];
    replay_pattern_with(chain, platform, alloc, &policies, pattern, periods)
}

/// Policy-aware [`replay_pattern`]: stage units carry per-stage policies,
/// so recomputing stages move only their boundary input per batch and
/// their backward durations include the recomputed forward.
pub fn replay_pattern_with(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    policies: &[StagePolicy],
    pattern: &Pattern,
    periods: usize,
) -> SimReport {
    replay_with(
        chain,
        platform,
        alloc,
        policies,
        pattern,
        periods,
        |_, _, _| {},
    )
}

/// [`replay_pattern`] with a memory observer: `on_mem(time, gpu, bytes)`
/// is called once per GPU with the static footprint at `t = 0`, then at
/// every stage-op completion that changes that GPU's residency, with the
/// *same* values the peak measurement folds — so a consumer taking
/// `max` over the samples reproduces `gpu_peak_bytes` bit for bit (the
/// memory counter tracks of [`crate::trace::schedule_trace`] rely on
/// this).
pub fn replay_with(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    policies: &[StagePolicy],
    pattern: &Pattern,
    periods: usize,
    mut on_mem: impl FnMut(f64, usize, u64),
) -> SimReport {
    madpipe_obs::span!("sim.replay");
    let seq = UnitSequence::from_allocation_with(chain, platform, alloc, policies);
    let t_period = pattern.period;
    let warmup = pattern.max_shift() as usize + 1;
    let total_periods = warmup + periods.max(2);

    let static_bytes = static_memory(chain, alloc, &seq);
    let mut dyn_bytes = vec![0i64; alloc.n_gpus()];
    let mut peak = static_bytes.clone();
    let mut busy_time = vec![0.0f64; alloc.n_gpus()];
    for (g, &b) in static_bytes.iter().enumerate() {
        on_mem(0.0, g, b);
    }

    // Events: (completion_time, op_index, batch).
    let mut events: EventQueue<(usize, i64)> = EventQueue::new();
    for (oi, op) in pattern.ops.iter().enumerate() {
        for k in 0..total_periods {
            let batch = k as i64 - op.shift as i64;
            let start = k as f64 * t_period + op.start;
            events.push(start + op.duration, (oi, batch));
            if batch >= 0 {
                if let Resource::Gpu(g) = op.resource {
                    busy_time[g] += op.duration;
                }
            }
        }
    }

    let mut completions: Vec<f64> = Vec::new();
    let mut makespan = 0.0f64;
    // The first op in chain order whose backward retires the batch.
    while let Some((t, (oi, batch))) = events.pop() {
        if batch < 0 {
            continue; // fill phase: the op idles in a real execution
        }
        makespan = t;
        let op = &pattern.ops[oi];
        let unit = &seq.units()[op.unit];
        if let (UnitKind::Stage { layers, .. }, Resource::Gpu(g)) = (&unit.kind, unit.resource) {
            let stored = chain.stage_live_batch_bytes(layers.clone(), unit.policy) as i64;
            match op.dir {
                Dir::Forward => dyn_bytes[g] += stored,
                Dir::Backward => dyn_bytes[g] -= stored,
            }
            let total = (static_bytes[g] as i64 + dyn_bytes[g]).max(0) as u64;
            peak[g] = peak[g].max(total);
            on_mem(t, g, total);
        }
        if op.unit == 0 && op.dir == Dir::Backward {
            completions.push(t);
        }
    }

    // Steady-state period over the second half of retirements.
    let period = if completions.len() >= 4 {
        let half = completions.len() / 2;
        (completions[completions.len() - 1] - completions[half - 1])
            / (completions.len() - half) as f64
    } else {
        t_period
    };

    let gpu_utilization = busy_time
        .iter()
        .map(|&bt| {
            if makespan > 0.0 {
                (bt / makespan).min(1.0)
            } else {
                0.0
            }
        })
        .collect();

    let memory_violation = peak.iter().any(|&p| p > platform.memory_bytes);
    SimReport {
        period,
        makespan,
        batches: completions.len(),
        gpu_peak_bytes: peak,
        gpu_utilization,
        memory_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use madpipe_model::{Layer, Partition};
    use madpipe_schedule::{best_contiguous_period, check_pattern, one_f1b_star};

    fn setup() -> (Chain, Platform, Allocation) {
        let chain = Chain::new(
            "t",
            1000,
            vec![
                Layer::new("a", 1.0, 2.0, 64, 1000),
                Layer::new("b", 2.0, 1.0, 64, 500),
                Layer::new("c", 1.5, 1.5, 64, 250),
            ],
        )
        .unwrap();
        let platform = Platform::new(3, 1 << 20, 1000.0).unwrap();
        let part = Partition::from_cuts(&[1, 2], 3).unwrap();
        let alloc = Allocation::contiguous(&part, 3).unwrap();
        (chain, platform, alloc)
    }

    #[test]
    fn replay_achieves_the_pattern_period() {
        let (chain, platform, alloc) = setup();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        let report = replay_pattern(&chain, &platform, &alloc, &best.pattern, 50);
        assert!(
            (report.period - best.period).abs() < 1e-6,
            "replayed {} vs analytic {}",
            report.period,
            best.period
        );
        assert!(!report.memory_violation);
    }

    #[test]
    fn replay_memory_matches_the_checker() {
        let (chain, platform, alloc) = setup();
        let seq = UnitSequence::from_allocation(&chain, &platform, &alloc);
        let t = seq.max_unit_load() * 1.1;
        let pattern = one_f1b_star(&seq, t);
        let analytic = check_pattern(&chain, &platform, &alloc, &seq, &pattern).unwrap();
        let report = replay_pattern(&chain, &platform, &alloc, &pattern, 60);
        assert_eq!(report.gpu_peak_bytes, analytic.gpu_peak_bytes);
    }

    #[test]
    fn utilization_is_bounded_and_positive() {
        let (chain, platform, alloc) = setup();
        let best = best_contiguous_period(&chain, &platform, &alloc).unwrap();
        let report = replay_pattern(&chain, &platform, &alloc, &best.pattern, 40);
        for &u in &report.gpu_utilization {
            assert!(u > 0.0 && u <= 1.0);
        }
    }
}
