//! Mutation testing of the exact checker: corrupt provably valid
//! patterns in ways that are *guaranteed* invalid and assert the checker
//! rejects every one of them.
//!
//! The key guarantee exploited here is Proposition 1: 1F1B* stores the
//! *minimum* possible number of live batches per stage among all valid
//! patterns of its period — so any mutation that lowers a stage's stored
//! count (decrementing its backward shift) cannot be valid, whatever
//! else it does.

use proptest::prelude::*;

use madpipe_model::{Allocation, Chain, Layer, Partition, Platform, UnitSequence};
use madpipe_schedule::{check_pattern, one_f1b_star, Dir};

fn arb_instance() -> impl Strategy<Value = (Chain, Vec<usize>)> {
    prop::collection::vec((0.2f64..4.0, 0.2f64..4.0, 1u64..10_000), 2..=8)
        .prop_flat_map(|specs| {
            let n = specs.len();
            let chain = {
                let layers = specs
                    .iter()
                    .enumerate()
                    .map(|(i, &(f, b, a))| Layer::new(format!("l{i}"), f, b, 0, a))
                    .collect();
                Chain::new("mut", 2_000, layers).unwrap()
            };
            (Just(chain), prop::collection::vec(prop::bool::ANY, n - 1))
        })
        .prop_map(|(chain, mask)| {
            let cuts = mask
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(i, _)| i + 1)
                .collect();
            (chain, cuts)
        })
}

fn setup(chain: &Chain, cuts: &[usize]) -> (Platform, Allocation, UnitSequence) {
    let part = Partition::from_cuts(cuts, chain.len()).unwrap();
    let n_gpus = part.len();
    let platform = Platform::new(n_gpus, u64::MAX / 4, 1_000.0).unwrap();
    let alloc = Allocation::contiguous(&part, n_gpus).unwrap();
    let seq = UnitSequence::from_allocation(chain, &platform, &alloc);
    (platform, alloc, seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lowering any backward shift reduces a stored count below the
    /// 1F1B* optimum — Proposition 1 says no valid pattern can do that.
    #[test]
    fn decrementing_a_backward_shift_is_always_caught(
        (chain, cuts) in arb_instance(),
        pick in any::<prop::sample::Index>(),
        t_scale in 1.0f64..2.0,
    ) {
        let (platform, alloc, seq) = setup(&chain, &cuts);
        let t = seq.max_unit_load() * t_scale;
        let pattern = one_f1b_star(&seq, t);
        check_pattern(&chain, &platform, &alloc, &seq, &pattern).expect("baseline valid");

        let backs: Vec<usize> = pattern
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.dir == Dir::Backward && o.shift >= 1 && !seq.units()[o.unit].is_comm())
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!backs.is_empty());
        let mut mutated = pattern.clone();
        let which = backs[pick.index(backs.len())];
        mutated.ops[which].shift -= 1;
        prop_assert!(
            check_pattern(&chain, &platform, &alloc, &seq, &mutated).is_err(),
            "checker accepted a pattern storing fewer batches than the optimum"
        );
    }

    /// Forcing two ops of one resource to the same start must be caught
    /// (as overlap or as a broken dependency).
    #[test]
    fn overlapping_ops_are_always_caught(
        (chain, cuts) in arb_instance(),
        pick in any::<prop::sample::Index>(),
    ) {
        let (platform, alloc, seq) = setup(&chain, &cuts);
        let t = seq.max_unit_load();
        let pattern = one_f1b_star(&seq, t);
        check_pattern(&chain, &platform, &alloc, &seq, &pattern).expect("baseline valid");

        // Pairs on the same resource with both durations positive.
        let mut pairs = Vec::new();
        for i in 0..pattern.ops.len() {
            for j in i + 1..pattern.ops.len() {
                if pattern.ops[i].resource == pattern.ops[j].resource
                    && pattern.ops[i].duration > 1e-9
                    && pattern.ops[j].duration > 1e-9
                {
                    pairs.push((i, j));
                }
            }
        }
        prop_assume!(!pairs.is_empty());
        let (i, j) = pairs[pick.index(pairs.len())];
        let mut mutated = pattern.clone();
        mutated.ops[j].start = mutated.ops[i].start;
        prop_assert!(check_pattern(&chain, &platform, &alloc, &seq, &mutated).is_err());
    }

    /// Tampering with a duration is caught as an op/unit mismatch.
    #[test]
    fn duration_tampering_is_always_caught(
        (chain, cuts) in arb_instance(),
        pick in any::<prop::sample::Index>(),
    ) {
        let (platform, alloc, seq) = setup(&chain, &cuts);
        let t = seq.total_load();
        let mut pattern = one_f1b_star(&seq, t);
        let idx = pick.index(pattern.ops.len());
        pattern.ops[idx].duration *= 0.5;
        prop_assert!(check_pattern(&chain, &platform, &alloc, &seq, &pattern).is_err());
    }

    /// Dropping an op is caught as incompleteness.
    #[test]
    fn missing_ops_are_always_caught(
        (chain, cuts) in arb_instance(),
        pick in any::<prop::sample::Index>(),
    ) {
        let (platform, alloc, seq) = setup(&chain, &cuts);
        let mut pattern = one_f1b_star(&seq, seq.total_load());
        let idx = pick.index(pattern.ops.len());
        pattern.ops.remove(idx);
        prop_assert!(check_pattern(&chain, &platform, &alloc, &seq, &pattern).is_err());
    }

    /// Swapping the direction of the final backward breaks the F→B edge.
    #[test]
    fn reversing_f_and_b_of_the_last_unit_is_caught(
        (chain, cuts) in arb_instance(),
    ) {
        let (platform, alloc, seq) = setup(&chain, &cuts);
        let mut pattern = one_f1b_star(&seq, seq.total_load());
        let last = seq.len() - 1;
        // Exchange the start times of F and B of the last unit, keeping
        // the (duration, dir) pairs intact; with distinct durations this
        // puts B strictly before F completes.
        let fi = pattern.ops.iter().position(|o| o.unit == last && o.dir == Dir::Forward).unwrap();
        let bi = pattern.ops.iter().position(|o| o.unit == last && o.dir == Dir::Backward).unwrap();
        let (sf, sb) = (pattern.ops[fi].start, pattern.ops[bi].start);
        prop_assume!((pattern.ops[fi].duration - pattern.ops[bi].duration).abs() > 1e-9
            || (sf - sb).abs() > 1e-9);
        pattern.ops[fi].start = sb;
        pattern.ops[bi].start = sf;
        // Also keep shifts: the sequential pattern has shift 0 everywhere,
        // so B now starts before F completes on the same batch.
        prop_assert!(check_pattern(&chain, &platform, &alloc, &seq, &pattern).is_err());
    }
}
