//! The event-driven connection reactor.
//!
//! One thread owns the listener and every client socket. Sockets are
//! nonblocking; the reactor parks in `poll(2)` (declared raw, like the
//! daemon's `signal(2)` — no libc crate) until a socket is readable or
//! writable, a worker rings the self-pipe [`Waker`], or a timeout needs
//! noticing. On hosts without `poll` it degrades to a bounded-sleep
//! loop. Either way the reactor never busy-spins while connections are
//! idle.
//!
//! Pipelining: a connection may have many newline-delimited requests in
//! flight at once. Each parsed line becomes a [`Slot`] in the
//! connection's in-flight queue — instant commands (`ping`, `metrics`,
//! `health`, `gossip`, `shutdown`, cache hits, structured errors) are
//! born answered; planning misses hold the receiver half of the worker
//! reply channel. Only the *front* slot may retire, so responses leave
//! in request order no matter how the worker pool reorders completions.
//!
//! Flow control, per connection: at most [`MAX_INFLIGHT`] queued slots
//! and roughly [`MAX_LINE_BYTES`] of unparsed input — past either bound
//! the reactor simply stops reading that socket until slots retire
//! (TCP backpressure does the rest). A single line crossing
//! [`MAX_LINE_BYTES`] is rejected with a structured `malformed` error
//! *while it streams in* and discarded up to the next newline; the
//! connection, and every other pipelined request on it, survives.
//!
//! Accepting: transient `accept(2)` failures (`EMFILE`, `ENFILE`,
//! `ECONNABORTED`, …) put the listener on exponential backoff
//! (1 ms → 200 ms, counters `serve.accept.errors` and
//! `serve.accept.backoff_ms`, both surfaced in `health`) instead of
//! tight-looping; `EINTR` retries immediately and `WouldBlock` resets
//! the backoff.
//!
//! Overload: a plan miss consults the [`Ctx::gate`] admission gate
//! before touching the queue — when queue sojourn has been above target
//! for a sustained window the miss is shed with a structured
//! `overloaded` error (`serve.shed.overload`) instead of joining a
//! standing queue; a full queue is still an immediate reject
//! (`serve.rejects`).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use madpipe_json::Value;
use madpipe_model::{Platform, PlatformFault};

use crate::protocol::{
    attach_trace, error_response, gossip_response, ok_response, parse_line, plan_response,
    replan_response, GossipEntry, PlanRequest, Request, ServeError,
};
use crate::server::{health_value, Ctx, DeadlineQueue, Job, PlanOutcome, MAX_LINE_BYTES};

/// Per-connection cap on queued (unanswered) pipelined requests; past
/// it the reactor stops reading the socket until slots retire.
pub const MAX_INFLIGHT: usize = 256;

/// Read granularity per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;

/// Poll timeout with nothing in flight: bounds how stale the drain flag
/// (e.g. a SIGTERM) can get, nothing else — real events cut it short.
const IDLE_WAIT: Duration = Duration::from_millis(100);

/// Poll timeout with planning replies outstanding. The waker normally
/// ends the wait in microseconds; this is the safety net that also
/// bounds deadline-detection lag.
const PENDING_WAIT: Duration = Duration::from_millis(20);

const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(200);

// --- self-pipe waker (raw syscalls, Linux) --------------------------------

#[cfg(target_os = "linux")]
mod sys {
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }

    pub const O_NONBLOCK: i32 = 0o4000;
    pub const O_CLOEXEC: i32 = 0o2000000;
}

/// Wakes the reactor out of its poll. Workers ring it after sending a
/// reply so a finished plan is written back within microseconds, not at
/// the next poll timeout. Cheap, async-signal-safe, clone-free.
#[cfg(target_os = "linux")]
pub(crate) struct Waker {
    fd: i32,
}

#[cfg(target_os = "linux")]
impl Waker {
    pub(crate) fn wake(&self) {
        // A full pipe means a wake is already pending — exactly as good.
        let byte = 1u8;
        unsafe { sys::write(self.fd, &byte, 1) };
    }
}

#[cfg(target_os = "linux")]
impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// The reactor's end of the self-pipe.
#[cfg(target_os = "linux")]
pub(crate) struct WakeRx {
    fd: i32,
}

#[cfg(target_os = "linux")]
impl WakeRx {
    fn drain(&self) {
        let mut buf = [0u8; 64];
        while unsafe { sys::read(self.fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

#[cfg(target_os = "linux")]
impl Drop for WakeRx {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

#[cfg(target_os = "linux")]
pub(crate) fn wake_pair() -> std::io::Result<(Waker, WakeRx)> {
    let mut fds = [0i32; 2];
    if unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) } != 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok((Waker { fd: fds[1] }, WakeRx { fd: fds[0] }))
}

/// Fallback waker on hosts without the raw-syscall path: the reactor
/// sleeps in bounded steps instead of parking in `poll`, so wakes are
/// observed within [`PENDING_WAIT`] anyway.
#[cfg(not(target_os = "linux"))]
pub(crate) struct Waker;

#[cfg(not(target_os = "linux"))]
impl Waker {
    pub(crate) fn wake(&self) {}
}

#[cfg(not(target_os = "linux"))]
pub(crate) struct WakeRx;

#[cfg(not(target_os = "linux"))]
pub(crate) fn wake_pair() -> std::io::Result<(Waker, WakeRx)> {
    Ok((Waker, WakeRx))
}

// --- connection state machine ---------------------------------------------

/// A planning request somewhere between submission and response.
enum PlanWait {
    /// Waiting on a worker; the deadline turns into a `timeout` error.
    Pending {
        rx: Receiver<PlanOutcome>,
        deadline: Instant,
    },
    Done(PlanOutcome),
}

/// A `replan`'s two concurrent planning waits plus what the response
/// renderer needs.
struct ReplanSlot {
    fault: PlatformFault,
    degraded_platform: Platform,
    baseline: PlanWait,
    degraded: PlanWait,
}

/// One pipelined request awaiting its turn to be written back.
enum Slot {
    /// Response already rendered (instant commands, cache hits, errors).
    Ready(String),
    Plan(PlanWait),
    Replan(Box<ReplanSlot>),
}

/// A [`Slot`] plus its per-request trace state. Every request gets a
/// request span in the flight recorder (ids are 0-cost to mint); only
/// requests whose line carried a `trace` context echo `trace`/`span`
/// fields on their response — untraced traffic is answered
/// byte-identically to a build without tracing.
struct InFlight {
    slot: Slot,
    /// Inbound distributed trace id (0 = untraced).
    trace: u64,
    /// Inbound parent span id (the router's forward span).
    parent: u64,
    /// This request's span id: parent of queue/worker/DP spans, echoed
    /// on traced responses.
    span: u64,
    /// The line carried a trace context → echo it back.
    echo: bool,
    /// Wall-clock pair for the retire-time request span.
    started: Instant,
    started_us: f64,
}

impl InFlight {
    fn untraced(slot: Slot) -> Self {
        InFlight {
            slot,
            trace: 0,
            parent: 0,
            span: madpipe_obs::fresh_id(),
            echo: false,
            started: Instant::now(),
            started_us: madpipe_obs::now_unix_us(),
        }
    }
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already on the wire.
    write_pos: usize,
    inflight: VecDeque<InFlight>,
    /// Skipping the rest of an already-rejected oversized line.
    discarding: bool,
    peer_eof: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: VecDeque::new(),
            discarding: false,
            peer_eof: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.write_pos == self.write_buf.len()
    }

    /// Reading is pointless: EOF seen, or flow control says wait.
    fn read_blocked(&self) -> bool {
        self.peer_eof || self.inflight.len() >= MAX_INFLIGHT || self.read_buf.len() > MAX_LINE_BYTES
    }

    /// Nothing left this connection can ever do.
    fn finished(&self, draining: bool) -> bool {
        if self.dead {
            return true;
        }
        if !self.inflight.is_empty() || !self.flushed() {
            return false;
        }
        // A trailing partial line can never complete after EOF.
        (self.peer_eof && !self.read_buf.contains(&b'\n')) || draining
    }
}

// --- the reactor loop ------------------------------------------------------

/// Run the reactor until drain completes. Closing the job queue on
/// exit is what lets the workers finish the remaining jobs and leave.
pub(crate) fn reactor_loop(
    listener: TcpListener,
    ctx: Arc<Ctx>,
    jobs: Arc<DeadlineQueue>,
    wake: WakeRx,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut backoff = Duration::ZERO;
    let mut retry_at: Option<Instant> = None;
    loop {
        let mut progress = false;
        if !ctx.draining() && retry_at.is_none_or(|t| Instant::now() >= t) {
            progress |= accept_burst(&listener, &ctx, &mut conns, &mut backoff, &mut retry_at);
        }
        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            progress |= read_some(conn);
            progress |= extract_lines(conn, &ctx, &jobs);
            progress |= retire_slots(conn, &ctx);
            progress |= flush_writes(conn);
        }
        let draining = ctx.draining();
        conns.retain_mut(|c| {
            if c.finished(draining) {
                abandon_inflight(c, &ctx);
                false
            } else {
                true
            }
        });
        if draining && conns.is_empty() {
            break;
        }
        if !progress {
            let pending = conns.iter().any(|c| !c.inflight.is_empty());
            let mut timeout = if pending { PENDING_WAIT } else { IDLE_WAIT };
            if let Some(t) = retry_at {
                timeout = timeout
                    .min(t.saturating_duration_since(Instant::now()))
                    .max(Duration::from_millis(1));
            }
            let accepting = !draining && retry_at.is_none();
            wait_for_events(&listener, &conns, &wake, timeout, accepting);
        }
    }
    jobs.close();
}

/// Accept until `WouldBlock`. Transient failures arm the exponential
/// backoff window; `EINTR` just retries.
fn accept_burst(
    listener: &TcpListener,
    ctx: &Arc<Ctx>,
    conns: &mut Vec<Conn>,
    backoff: &mut Duration,
    retry_at: &mut Option<Instant>,
) -> bool {
    let mut progress = false;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                *backoff = Duration::ZERO;
                *retry_at = None;
                // One-line responses must not sit in Nagle's buffer.
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                ctx.registry.inc("serve.connections");
                conns.push(Conn::new(stream));
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                *backoff = Duration::ZERO;
                *retry_at = None;
                break;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                // EMFILE/ENFILE/ECONNABORTED and friends: back off so a
                // fd-exhausted process doesn't turn the reactor into a
                // hot error loop.
                ctx.registry.inc("serve.accept.errors");
                *backoff = if backoff.is_zero() {
                    ACCEPT_BACKOFF_MIN
                } else {
                    (*backoff * 2).min(ACCEPT_BACKOFF_MAX)
                };
                // Total backoff armed, in ms — lets a monitor tell "one
                // blip" from "the listener has been throttled for
                // minutes" without scraping logs.
                ctx.registry
                    .add("serve.accept.backoff_ms", backoff.as_millis() as u64);
                *retry_at = Some(Instant::now() + *backoff);
                break;
            }
        }
    }
    progress
}

fn read_some(conn: &mut Conn) -> bool {
    let mut progress = false;
    let mut chunk = [0u8; READ_CHUNK];
    while !conn.read_blocked() {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                progress = true;
                let mut data = &chunk[..n];
                if conn.discarding {
                    match data.iter().position(|b| *b == b'\n') {
                        Some(pos) => {
                            conn.discarding = false;
                            data = &data[pos + 1..];
                        }
                        None => continue,
                    }
                }
                conn.read_buf.extend_from_slice(data);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    progress
}

/// Turn buffered complete lines into in-flight slots, and reject an
/// over-bound line (complete or still streaming) in pipeline position.
fn extract_lines(conn: &mut Conn, ctx: &Arc<Ctx>, jobs: &Arc<DeadlineQueue>) -> bool {
    let mut progress = false;
    while conn.inflight.len() < MAX_INFLIGHT {
        let Some(pos) = conn.read_buf.iter().position(|b| *b == b'\n') else {
            break;
        };
        if pos > MAX_LINE_BYTES {
            conn.inflight
                .push_back(InFlight::untraced(oversized_slot(ctx)));
            conn.read_buf.drain(..=pos);
            progress = true;
            continue;
        }
        let line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..pos]).into_owned();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        conn.inflight.push_back(slot_for_line(trimmed, ctx, jobs));
        progress = true;
    }
    // A partial line past the bound is rejected the moment it crosses
    // it — the buffer never grows on — and the rest is discarded.
    if conn.read_buf.len() > MAX_LINE_BYTES && !conn.read_buf.contains(&b'\n') {
        conn.inflight
            .push_back(InFlight::untraced(oversized_slot(ctx)));
        conn.read_buf.clear();
        conn.read_buf.shrink_to_fit();
        conn.discarding = true;
        progress = true;
    }
    progress
}

fn oversized_slot(ctx: &Arc<Ctx>) -> Slot {
    ctx.registry.inc("serve.errors.oversized");
    let err = ServeError::malformed(format!("request line exceeds {MAX_LINE_BYTES} bytes"));
    Slot::Ready(error_response(&err))
}

/// Parse one request line into its in-flight entry. Everything except a
/// planning cache miss is answered on the spot.
fn slot_for_line(line: &str, ctx: &Arc<Ctx>, jobs: &Arc<DeadlineQueue>) -> InFlight {
    let started = Instant::now();
    let started_us = madpipe_obs::now_unix_us();
    let _span = madpipe_obs::span("serve.request");
    ctx.registry.inc("serve.requests");
    let (req, tctx) = match parse_line(line) {
        Ok(parsed) => parsed,
        Err(err) => {
            ctx.registry.inc(match err.kind {
                "invalid" => "serve.errors.invalid",
                _ => "serve.errors.malformed",
            });
            return InFlight::untraced(Slot::Ready(error_response(&err)));
        }
    };
    // The request span: root of this hop's flight spans, child of the
    // inbound context (the router's forward span) when one arrived.
    let span_id = madpipe_obs::fresh_id();
    let (trace, parent, echo) = match tctx {
        Some(c) => (c.trace, c.parent, true),
        None => (0, 0, false),
    };
    let slot = match req {
        Request::Ping => Slot::Ready(ok_response("pong", Value::Bool(true))),
        Request::Metrics => {
            sync_events_dropped(ctx);
            let text = ctx.registry.snapshot().to_prometheus();
            Slot::Ready(ok_response("metrics", Value::Str(text)))
        }
        Request::Health => {
            sync_events_dropped(ctx);
            Slot::Ready(ok_response("health", health_value(ctx)))
        }
        Request::Shutdown => {
            ctx.draining.store(true, Ordering::SeqCst);
            Slot::Ready(ok_response("draining", Value::Bool(true)))
        }
        Request::Gossip(entries) => Slot::Ready(apply_gossip(entries, ctx)),
        Request::Plan(plan) => {
            ctx.registry.inc("serve.requests.plan");
            let deadline = Instant::now() + ctx.timeout;
            Slot::Plan(submit_plan(*plan, deadline, ctx, jobs, trace, span_id))
        }
        Request::Replan(replan) => {
            let _span = madpipe_obs::span("serve.replan");
            ctx.registry.inc("serve.requests.replan");
            ctx.registry
                .inc(&format!("replan.fault.{}", replan.fault.kind()));
            let deadline = Instant::now() + ctx.timeout;
            let degraded_platform = replan.degraded.platform.clone();
            Slot::Replan(Box::new(ReplanSlot {
                fault: replan.fault,
                degraded_platform,
                baseline: submit_plan(replan.baseline, deadline, ctx, jobs, trace, span_id),
                degraded: submit_plan(replan.degraded, deadline, ctx, jobs, trace, span_id),
            }))
        }
    };
    InFlight {
        slot,
        trace,
        parent,
        span: span_id,
        echo,
        started,
        started_us,
    }
}

/// Fold the flight recorder's loss count into the registry as the
/// monotone `serve.events.dropped` counter, so metrics dumps (and the
/// router's cluster rollup, which sums them) surface ring overwrites.
fn sync_events_dropped(ctx: &Arc<Ctx>) {
    let dropped = madpipe_obs::flight::dropped();
    let seen = ctx.registry.counter("serve.events.dropped");
    if dropped > seen {
        ctx.registry.add("serve.events.dropped", dropped - seen);
    }
}

/// Peer cache warming: insert shipped plans this cache doesn't hold.
fn apply_gossip(entries: Vec<GossipEntry>, ctx: &Arc<Ctx>) -> String {
    ctx.registry
        .add("serve.gossip.received", entries.len() as u64);
    let (mut applied, mut already_held) = (0u64, 0u64);
    for e in entries {
        let (inserted, evicted) = ctx.cache.warm(e.key, Arc::new(e.plan));
        if inserted {
            applied += 1;
        } else {
            already_held += 1;
        }
        ctx.registry.add("serve.cache.evictions", evicted);
    }
    ctx.registry.add("serve.gossip.applied", applied);
    gossip_response(applied, already_held)
}

/// One instance through the cache, then (on a miss) onto the worker
/// queue — without waiting: the wait lives in the slot.
fn submit_plan(
    req: PlanRequest,
    deadline: Instant,
    ctx: &Arc<Ctx>,
    jobs: &Arc<DeadlineQueue>,
    trace: u64,
    span: u64,
) -> PlanWait {
    if let Some(plan) = ctx.cache.get(&req.canonical) {
        ctx.registry.inc("serve.cache.hits");
        madpipe_obs::flight::record_instant(
            "serve.cache.hit",
            madpipe_obs::now_unix_us(),
            trace,
            span,
        );
        return PlanWait::Done(Ok((plan, true)));
    }
    ctx.registry.inc("serve.cache.misses");
    madpipe_obs::flight::record_instant(
        "serve.cache.miss",
        madpipe_obs::now_unix_us(),
        trace,
        span,
    );
    if ctx.draining() {
        return PlanWait::Done(Err(ServeError::unavailable()));
    }
    // CoDel-style admission: when queue sojourn has exceeded its target
    // for a sustained window, shed a growing fraction of new misses so
    // the requests that *are* admitted still meet their deadlines.
    if !ctx.gate.admit(ctx.queue_depth.load(Ordering::SeqCst)) {
        ctx.registry.inc("serve.shed.overload");
        return PlanWait::Done(Err(ServeError::overloaded()));
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel::<PlanOutcome>(1);
    let job = Job {
        req: Box::new(req),
        deadline,
        reply: reply_tx,
        trace,
        span,
        enqueued: Instant::now(),
    };
    match jobs.try_push(job) {
        Ok(()) => {
            ctx.queue_depth.fetch_add(1, Ordering::SeqCst);
            PlanWait::Pending {
                rx: reply_rx,
                deadline,
            }
        }
        Err(_) if ctx.draining() => PlanWait::Done(Err(ServeError::unavailable())),
        Err(_) => {
            ctx.registry.inc("serve.rejects");
            PlanWait::Done(Err(ServeError::overloaded()))
        }
    }
}

/// Advance one wait without blocking; true once it holds an outcome.
fn poll_wait(w: &mut PlanWait, ctx: &Arc<Ctx>) -> bool {
    if let PlanWait::Pending { rx, deadline } = w {
        match rx.try_recv() {
            Ok(outcome) => *w = PlanWait::Done(outcome),
            Err(TryRecvError::Empty) => {
                if Instant::now() >= *deadline {
                    // The worker result (if any) still lands in the
                    // cache; a retry will hit.
                    ctx.registry.inc("serve.timeouts");
                    *w = PlanWait::Done(Err(ServeError::timeout()));
                } else {
                    return false;
                }
            }
            Err(TryRecvError::Disconnected) => {
                *w = PlanWait::Done(Err(ServeError::unavailable()));
            }
        }
    }
    true
}

fn outcome_response(outcome: &PlanOutcome) -> String {
    match outcome {
        Ok((plan, cached)) => plan_response(plan, *cached),
        Err(err) => error_response(err),
    }
}

/// Retire completed slots from the front of the queue into the write
/// buffer — front-only, so pipelined responses keep request order. A
/// retiring request stamps its `serve.request` span (traced or not) and
/// the `serve.request.seconds` latency histogram; traced requests also
/// get the `trace`/`span` echo spliced onto their response line.
fn retire_slots(conn: &mut Conn, ctx: &Arc<Ctx>) -> bool {
    let mut progress = false;
    while let Some(front) = conn.inflight.front_mut() {
        let response = match &mut front.slot {
            Slot::Ready(s) => std::mem::take(s),
            Slot::Plan(w) => {
                if !poll_wait(w, ctx) {
                    break;
                }
                let PlanWait::Done(outcome) = w else {
                    unreachable!()
                };
                outcome_response(outcome)
            }
            Slot::Replan(r) => {
                // Poll both sides so neither stalls the other; the slot
                // retires once both are in.
                let base_done = poll_wait(&mut r.baseline, ctx);
                let deg_done = poll_wait(&mut r.degraded, ctx);
                if !(base_done && deg_done) {
                    break;
                }
                let (PlanWait::Done(base), PlanWait::Done(deg)) = (&r.baseline, &r.degraded) else {
                    unreachable!()
                };
                match (base, deg) {
                    (Ok((base_plan, base_cached)), Ok((deg_plan, deg_cached))) => {
                        ctx.registry.inc("replan.completed");
                        replan_response(
                            &r.fault,
                            &r.degraded_platform,
                            base_plan,
                            *base_cached,
                            deg_plan,
                            *deg_cached,
                        )
                    }
                    // Baseline failure takes precedence, as in the
                    // sequential protocol.
                    (Err(err), _) | (Ok(_), Err(err)) => error_response(err),
                }
            }
        };
        let done = conn.inflight.pop_front().expect("front just matched");
        let mut response = response;
        ctx.registry.observe(
            "serve.request.seconds",
            done.started.elapsed().as_secs_f64(),
        );
        madpipe_obs::flight::record_span(
            "serve.request",
            done.started_us,
            done.started.elapsed().as_secs_f64() * 1e6,
            done.trace,
            done.span,
            done.parent,
        );
        if done.echo {
            attach_trace(&mut response, done.trace, done.span);
        }
        conn.write_buf.extend_from_slice(response.as_bytes());
        conn.write_buf.push(b'\n');
        progress = true;
    }
    progress
}

/// Close out the request spans of a connection dropped with work still
/// in flight (peer hung up, write error): nobody will read the
/// responses, but the flight recorder still gets a complete span per
/// request — a worker span recorded later must never reference a
/// request span that was silently discarded.
fn abandon_inflight(conn: &mut Conn, ctx: &Arc<Ctx>) {
    for dropped in conn.inflight.drain(..) {
        ctx.registry.inc("serve.abandoned");
        madpipe_obs::flight::record_span(
            "serve.request",
            dropped.started_us,
            dropped.started.elapsed().as_secs_f64() * 1e6,
            dropped.trace,
            dropped.span,
            dropped.parent,
        );
    }
}

fn flush_writes(conn: &mut Conn) -> bool {
    let mut progress = false;
    while conn.write_pos < conn.write_buf.len() {
        match (&conn.stream).write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.write_pos += n;
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.write_pos == conn.write_buf.len() && conn.write_pos > 0 {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    progress
}

// --- parking ---------------------------------------------------------------

/// Park until a socket is ready, the waker rings, or `timeout` passes.
#[cfg(target_os = "linux")]
fn wait_for_events(
    listener: &TcpListener,
    conns: &[Conn],
    wake: &WakeRx,
    timeout: Duration,
    accepting: bool,
) {
    use std::os::unix::io::AsRawFd;
    let mut fds: Vec<sys::PollFd> = Vec::with_capacity(conns.len() + 2);
    fds.push(sys::PollFd {
        fd: wake.fd,
        events: sys::POLLIN,
        revents: 0,
    });
    if accepting {
        fds.push(sys::PollFd {
            fd: listener.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
    }
    for c in conns {
        let mut events = 0i16;
        if !c.read_blocked() {
            events |= sys::POLLIN;
        }
        if !c.flushed() {
            events |= sys::POLLOUT;
        }
        if events != 0 {
            fds.push(sys::PollFd {
                fd: c.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
    }
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    // The next loop iteration retries every socket regardless of which
    // fd fired, so revents (and EINTR) need no decoding here.
    unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
    wake.drain();
}

/// Portable fallback: bounded sleep. Wakes are observed on the next
/// iteration, at worst `timeout` later (the callers cap it at
/// [`PENDING_WAIT`] whenever replies are outstanding).
#[cfg(not(target_os = "linux"))]
fn wait_for_events(
    _listener: &TcpListener,
    _conns: &[Conn],
    _wake: &WakeRx,
    timeout: Duration,
    _accepting: bool,
) {
    std::thread::sleep(timeout.max(Duration::from_millis(1)));
}
