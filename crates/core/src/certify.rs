//! Differential schedule certification.
//!
//! MadPipe's central claim (Prop. 1) is that every plan it emits is
//! *exactly* memory-feasible and achieves its computed period. Three
//! independent oracles in the workspace each validate a piece of that
//! claim — the analytic checker (`madpipe_schedule::check`), the event
//! replay (`madpipe_sim::replay`) and the exhaustive enumerator
//! (`madpipe_solver::exact`) — and this module cross-checks them against
//! each other on a concrete plan:
//!
//! 1. the analytic checker must accept the pattern and reproduce the
//!    plan's period;
//! 2. the event replay over K periods must agree with the checker on the
//!    period (to relative tolerance) and on every per-GPU memory peak
//!    (byte for byte) — as must the fault-injection executor at zero
//!    fault;
//! 3. on tiny instances the plan must not beat the exhaustive optimum
//!    (which would mean the reference itself is broken);
//! 4. timing faults ([`madpipe_sim::FaultSpec`]) are injected at growing
//!    amplitude to find the largest compute jitter and the largest
//!    bandwidth degradation under which the plan still achieves its
//!    period (within a headroom) without violating memory — the
//!    *robustness margins* reported per plan.
//!
//! The CLI front end is `madpipe certify`; the bench grid records the
//! verdict and jitter margin per cell.

use madpipe_model::{Allocation, Chain, Platform, StagePolicy, UnitSequence};
use madpipe_schedule::check::{check_pattern, PatternReport};
use madpipe_schedule::Pattern;
use madpipe_sim::{replay_pattern_with, replay_perturbed_with, FaultSpec, SimReport};
use madpipe_solver::exact_optimum;

use crate::planner::MadPipePlan;
use crate::stats::{counters, PlannerStats};

/// Tuning for one certification run.
#[derive(Debug, Clone, Copy)]
pub struct CertifyConfig {
    /// Measured periods per replay (plus warm-up).
    pub periods: usize,
    /// Relative tolerance on period agreement between checker and replay.
    pub period_rel_tol: f64,
    /// Allowed period inflation under faults before the guarantee counts
    /// as broken: the margin search accepts amplitude `x` iff the
    /// achieved period stays within `(1 + headroom)` of the analytic one
    /// and no memory violation occurs.
    pub headroom: f64,
    /// Largest compute/communication jitter amplitude probed.
    pub jitter_cap: f64,
    /// Largest bandwidth degradation probed (must stay below 1).
    pub beta_cap: f64,
    /// Bisection iterations per margin.
    pub margin_iters: usize,
    /// Independent noise seeds per jitter amplitude (the amplitude holds
    /// only if every trial holds).
    pub trials: usize,
    /// Base seed of the noise streams.
    pub seed: u64,
    /// Cross-check against `exact_optimum` only when the chain has at
    /// most this many layers…
    pub exact_max_layers: usize,
    /// …and the platform at most this many GPUs (the enumerator is
    /// exponential).
    pub exact_max_gpus: usize,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        Self {
            periods: 50,
            period_rel_tol: 1e-6,
            headroom: 0.05,
            jitter_cap: 1.0,
            beta_cap: 0.95,
            margin_iters: 7,
            trials: 3,
            seed: 0x6d61_6470_6970_6531,
            exact_max_layers: 6,
            exact_max_gpus: 3,
        }
    }
}

impl CertifyConfig {
    /// A cheap profile for per-cell certification inside the bench grid.
    pub fn quick() -> Self {
        Self {
            periods: 24,
            margin_iters: 5,
            trials: 2,
            ..Self::default()
        }
    }
}

/// Outcome of the tiny-instance cross-check against the enumerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactCrossCheck {
    /// Period of the exhaustive optimum.
    pub exact_period: f64,
    /// Plan period / exact period (≥ 1 up to tolerance, or the
    /// reference is broken).
    pub ratio: f64,
}

/// The certificate: every oracle's verdict plus the robustness margins.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The analytic checker's report (absent when the checker rejected
    /// the pattern outright).
    pub analytic: Option<PatternReport>,
    /// The event replay's measurement.
    pub replay: Option<SimReport>,
    /// Tiny-instance cross-check (absent when the instance is too large
    /// for the enumerator).
    pub exact: Option<ExactCrossCheck>,
    /// Largest symmetric compute+comm jitter amplitude under which the
    /// plan still achieves its period (within headroom) without
    /// violating memory. `0` when even infinitesimal jitter breaks it.
    pub jitter_margin: f64,
    /// Largest bandwidth degradation the plan absorbs, same criterion.
    pub beta_margin: f64,
    /// Every disagreement found; empty iff the plan is certified.
    pub failures: Vec<String>,
    /// Wall-clock seconds the certification took (all four oracles plus
    /// the margin bisections).
    pub seconds: f64,
}

impl Certificate {
    /// True iff every cross-check agreed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Fold this certificate into the planner's stats: the pass/fail
    /// counters (plain and registry view) and the certification wall
    /// clock. Certification runs *after* `madpipe_plan` returns, so its
    /// time is added to `total_seconds` too — keeping the invariant that
    /// the per-phase clocks sum to at most the total.
    pub fn record(&self, stats: &mut PlannerStats) {
        if self.passed() {
            stats.certifications_passed += 1;
            stats.metrics.bump_counter(counters::CERTIFY_PASSED, 1);
        } else {
            stats.certifications_failed += 1;
            stats.metrics.bump_counter(counters::CERTIFY_FAILED, 1);
        }
        stats.certify_seconds += self.seconds;
        stats.total_seconds += self.seconds;
        stats
            .metrics
            .set_gauge("plan.certify.seconds", stats.certify_seconds);
        stats
            .metrics
            .set_gauge("plan.total.seconds", stats.total_seconds);
    }
}

/// Certify a full MadPipe plan against the chain/platform it was
/// planned for.
pub fn certify_plan(
    chain: &Chain,
    platform: &Platform,
    plan: &MadPipePlan,
    cfg: &CertifyConfig,
) -> Certificate {
    certify_with(
        chain,
        platform,
        &plan.allocation,
        &plan.policies,
        plan.period(),
        &plan.schedule.pattern,
        cfg,
    )
}

/// Certify an arbitrary `(allocation, period, pattern)` triple under
/// all-default stage policies.
pub fn certify(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    period: f64,
    pattern: &Pattern,
    cfg: &CertifyConfig,
) -> Certificate {
    let policies = vec![StagePolicy::default(); alloc.stages().len()];
    certify_with(chain, platform, alloc, &policies, period, pattern, cfg)
}

/// Certify under explicit per-stage policies: the analytic checker and
/// both replays model recompute time and the policy-dependent memory.
/// The exhaustive cross-check only runs under all-default policies (the
/// enumerator solves the paper's store-everything model; a recompute or
/// 2BW plan legitimately beats it on memory-bound instances).
pub fn certify_with(
    chain: &Chain,
    platform: &Platform,
    alloc: &Allocation,
    policies: &[StagePolicy],
    period: f64,
    pattern: &Pattern,
    cfg: &CertifyConfig,
) -> Certificate {
    let clock = madpipe_obs::timed("certify.differential");
    let mut cert = Certificate {
        analytic: None,
        replay: None,
        exact: None,
        jitter_margin: 0.0,
        beta_margin: 0.0,
        failures: Vec::new(),
        seconds: 0.0,
    };
    let seq = UnitSequence::from_allocation_with(chain, platform, alloc, policies);
    let tol = cfg.period_rel_tol * period.max(1e-12);

    // 1. Analytic checker.
    let analytic = match check_pattern(chain, platform, alloc, &seq, pattern) {
        Ok(report) => report,
        Err(e) => {
            cert.failures
                .push(format!("checker rejected the pattern: {e}"));
            cert.seconds = clock.finish();
            return cert;
        }
    };
    if (analytic.period - period).abs() > tol {
        cert.failures.push(format!(
            "checker period {} disagrees with the plan period {}",
            analytic.period, period
        ));
    }
    for (g, &peak) in analytic.gpu_peak_bytes.iter().enumerate() {
        if peak > platform.memory_bytes {
            cert.failures.push(format!(
                "analytic peak on GPU {g} ({peak} B) exceeds the limit ({} B)",
                platform.memory_bytes
            ));
        }
    }

    // 2. Event replay, plus the fault executor at zero fault — both must
    // agree with the checker on period (tolerance) and peaks (exactly).
    let replay = replay_pattern_with(chain, platform, alloc, policies, pattern, cfg.periods);
    if (replay.period - analytic.period).abs() > tol {
        cert.failures.push(format!(
            "replayed period {} disagrees with the analytic period {}",
            replay.period, analytic.period
        ));
    }
    if replay.gpu_peak_bytes != analytic.gpu_peak_bytes {
        cert.failures.push(format!(
            "replayed peaks {:?} disagree with analytic peaks {:?}",
            replay.gpu_peak_bytes, analytic.gpu_peak_bytes
        ));
    }
    let zero = replay_perturbed_with(
        chain,
        platform,
        alloc,
        policies,
        pattern,
        cfg.periods,
        &FaultSpec::zero(),
    );
    if (zero.period - analytic.period).abs() > tol || zero.gpu_peak_bytes != analytic.gpu_peak_bytes
    {
        cert.failures.push(format!(
            "zero-fault executor (period {}, peaks {:?}) disagrees with the checker \
             (period {}, peaks {:?})",
            zero.period, zero.gpu_peak_bytes, analytic.period, analytic.gpu_peak_bytes
        ));
    }

    // 3. Tiny instances: the plan must not beat the exhaustive optimum.
    // Only meaningful under the store-everything model the enumerator
    // solves: a recompute/2BW plan can legitimately exist (and win) where
    // the enumerator finds nothing.
    let all_default = policies.iter().all(|p| p.is_default());
    if all_default && chain.len() <= cfg.exact_max_layers && platform.n_gpus <= cfg.exact_max_gpus {
        match exact_optimum(chain, platform) {
            Some(exact) => {
                let ep = exact.schedule.period;
                if period < ep * (1.0 - 1e-6) {
                    cert.failures.push(format!(
                        "plan period {period} beats the exhaustive optimum {ep} — \
                         the reference itself is broken"
                    ));
                }
                cert.exact = Some(ExactCrossCheck {
                    exact_period: ep,
                    ratio: period / ep,
                });
            }
            None => cert.failures.push(
                "exhaustive enumerator found no schedulable allocation, \
                 yet this plan exists"
                    .into(),
            ),
        }
    }

    // 4. Robustness margins — only meaningful when the fault-free
    // cross-checks agree.
    if cert.failures.is_empty() {
        let target = analytic.period * (1.0 + cfg.headroom) + tol;
        let holds = |fault: &FaultSpec| -> bool {
            let r = replay_perturbed_with(
                chain,
                platform,
                alloc,
                policies,
                pattern,
                cfg.periods,
                fault,
            );
            !r.memory_violation && r.period <= target
        };
        cert.jitter_margin = bisect_margin(cfg.jitter_cap, cfg.margin_iters, |x| {
            (0..cfg.trials.max(1)).all(|t| holds(&FaultSpec::jitter(x, cfg.seed + t as u64)))
        });
        cert.beta_margin = bisect_margin(cfg.beta_cap, cfg.margin_iters, |x| {
            holds(&FaultSpec::degraded_bandwidth(x))
        });
    }

    cert.analytic = Some(analytic);
    cert.replay = Some(replay);
    cert.seconds = clock.finish();
    cert
}

/// Largest `x ∈ [0, cap]` with `holds(x)`, by bisection. `holds(0)` is
/// guaranteed by the zero-fault agreement check, so the search maintains
/// a holding lower bound throughout.
fn bisect_margin(cap: f64, iters: usize, holds: impl Fn(f64) -> bool) -> f64 {
    if holds(cap) {
        return cap;
    }
    let (mut lo, mut hi) = (0.0f64, cap);
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if holds(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{madpipe_plan, PlannerConfig};
    use madpipe_model::Layer;

    fn chain(costs: &[(f64, f64)], act: u64, w: u64) -> Chain {
        let layers = costs
            .iter()
            .enumerate()
            .map(|(i, &(f, b))| Layer::new(format!("l{i}"), f, b, w, act))
            .collect();
        Chain::new("t", act, layers).unwrap()
    }

    fn tiny_plan() -> (Chain, Platform, MadPipePlan) {
        let c = chain(
            &[(1.0, 2.0), (2.0, 1.0), (3.0, 2.0), (1.0, 1.0)],
            1 << 10,
            1 << 8,
        );
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let plan = madpipe_plan(&c, &platform, &PlannerConfig::default()).unwrap();
        (c, platform, plan)
    }

    #[test]
    fn a_valid_plan_certifies_with_nonzero_margins() {
        let (c, platform, plan) = tiny_plan();
        let cert = certify_plan(&c, &platform, &plan, &CertifyConfig::default());
        assert!(cert.passed(), "failures: {:?}", cert.failures);
        assert!(cert.analytic.is_some());
        assert!(cert.replay.is_some());
        // 4 layers on 2 GPUs is small enough for the enumerator.
        let exact = cert.exact.expect("tiny instance must cross-check");
        assert!(exact.ratio >= 1.0 - 1e-6, "ratio {}", exact.ratio);
        assert!(cert.jitter_margin > 0.0, "jitter margin must be nonzero");
        assert!(cert.beta_margin > 0.0, "beta margin must be nonzero");
    }

    #[test]
    fn a_tampered_pattern_fails_certification() {
        let (c, platform, plan) = tiny_plan();
        let mut pattern = plan.schedule.pattern.clone();
        // Shift one op by a third of the period: dependencies or
        // exclusivity must break.
        pattern.ops[0].start = (pattern.ops[0].start + pattern.period / 3.0) % pattern.period;
        let cert = certify(
            &c,
            &platform,
            &plan.allocation,
            plan.period(),
            &pattern,
            &CertifyConfig::default(),
        );
        assert!(!cert.passed());
        assert!(cert.analytic.is_none());
    }

    #[test]
    fn a_lied_about_period_fails_certification() {
        let (c, platform, plan) = tiny_plan();
        let cert = certify(
            &c,
            &platform,
            &plan.allocation,
            plan.period() * 0.5, // claim double the real throughput
            &plan.schedule.pattern,
            &CertifyConfig::default(),
        );
        assert!(!cert.passed());
        assert!(cert
            .failures
            .iter()
            .any(|f| f.contains("disagrees with the plan period")));
    }

    #[test]
    fn certificates_fold_into_planner_stats() {
        let (c, platform, plan) = tiny_plan();
        let cert = certify_plan(&c, &platform, &plan, &CertifyConfig::quick());
        let mut stats = PlannerStats::default();
        cert.record(&mut stats);
        assert_eq!(
            (stats.certifications_passed, stats.certifications_failed),
            (1, 0)
        );
        let failed = Certificate {
            analytic: None,
            replay: None,
            exact: None,
            jitter_margin: 0.0,
            beta_margin: 0.0,
            failures: vec!["boom".into()],
            seconds: 0.0,
        };
        failed.record(&mut stats);
        assert_eq!(stats.certifications_failed, 1);
        assert!(stats.summary().contains("certify 1/2"));
        assert_eq!(stats.metrics.counter(counters::CERTIFY_PASSED), 1);
        assert_eq!(stats.metrics.counter(counters::CERTIFY_FAILED), 1);
    }

    #[test]
    fn total_time_includes_certification_and_bounds_the_phase_sum() {
        let c = chain(
            &[(1.0, 2.0), (2.0, 1.0), (3.0, 2.0), (1.0, 1.0)],
            1 << 10,
            1 << 8,
        );
        let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
        let (plan, mut stats) =
            crate::planner::madpipe_plan_with_stats(&c, &platform, &PlannerConfig::default());
        let plan = plan.unwrap();
        let pre_total = stats.total_seconds;

        let cert = certify_plan(&c, &platform, &plan, &CertifyConfig::quick());
        assert!(cert.seconds > 0.0, "certification must be timed");
        cert.record(&mut stats);

        assert_eq!(stats.certify_seconds, cert.seconds);
        assert_eq!(stats.total_seconds, pre_total + cert.seconds);
        // The invariant of satellite 3: every phase clock runs inside
        // either the plan total or the certification clock, so the sum
        // never exceeds the (certification-inclusive) total.
        assert!(
            stats.phase_seconds_sum() <= stats.total_seconds + 1e-9,
            "phase sum {} > total {}",
            stats.phase_seconds_sum(),
            stats.total_seconds
        );
        assert_eq!(stats.metrics.counter(counters::CERTIFY_PASSED), 1);
    }

    use madpipe_model::{ActivationPolicy, PolicySpec, RecomputeMode, StagePolicy, WeightPolicy};
    use proptest::proptest;
    use proptest::test_runner::ProptestConfig;

    /// Deterministic pseudo-random chain from a seed (SplitMix64).
    fn seeded_chain(seed: u64) -> Chain {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let n = 3 + (next() % 3) as usize;
        let layers = (0..n)
            .map(|i| {
                let f = 0.5 + (next() % 8) as f64 * 0.25;
                let b = 0.5 + (next() % 8) as f64 * 0.25;
                let w = 1u64 << (6 + next() % 4);
                let a = 1u64 << (8 + next() % 4);
                Layer::new(format!("l{i}"), f, b, w, a)
            })
            .collect();
        Chain::new("seeded", 1 << 10, layers).unwrap()
    }

    const CORNERS: [PolicySpec; 4] = [
        PolicySpec {
            recompute: RecomputeMode::Never,
            weights: WeightPolicy::Full,
        },
        PolicySpec {
            recompute: RecomputeMode::Never,
            weights: WeightPolicy::TwoBw,
        },
        PolicySpec {
            recompute: RecomputeMode::Always,
            weights: WeightPolicy::Full,
        },
        PolicySpec {
            recompute: RecomputeMode::Always,
            weights: WeightPolicy::TwoBw,
        },
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Satellite: under all four policy corners, a produced plan must
        /// certify — the analytic checker, the event replay and the
        /// zero-fault executor agree on the period (tolerance) and on
        /// every per-GPU memory peak byte for byte (a peak mismatch is a
        /// certification failure, so `passed()` asserts the bitwise
        /// agreement).
        #[test]
        fn all_four_policy_corners_certify(seed in 0u64..8) {
            let c = seeded_chain(seed);
            let platform = Platform::new(2, 1 << 20, 1e6).unwrap();
            // The bitwise cross-checks (steps 1–3) are the point here;
            // skip the margin bisections to keep the sweep fast.
            let certify_cfg = CertifyConfig {
                periods: 12,
                margin_iters: 0,
                jitter_cap: 0.0,
                beta_cap: 0.0,
                trials: 1,
                ..CertifyConfig::default()
            };
            for policy in CORNERS {
                let cfg = PlannerConfig {
                    policy,
                    ..PlannerConfig::default()
                };
                let Ok(plan) = madpipe_plan(&c, &platform, &cfg) else {
                    continue;
                };
                let cert = certify_plan(&c, &platform, &plan, &certify_cfg);
                assert!(
                    cert.passed(),
                    "seed {seed} policy {policy:?}: {:?}",
                    cert.failures
                );
            }
        }
    }

    proptest! {
        /// Satellite: recompute + 2BW never needs more memory than the
        /// default policy for the same stage at the same pipeline depth
        /// (`2W ≤ 3W` and `g·a_in + (ā − a_in) ≤ g·ā`), checked across
        /// every stage range and a sweep of depths.
        #[test]
        fn recompute_2bw_stage_memory_dominated_by_default(seed in 0u64..64) {
            let c = seeded_chain(seed);
            let tight = StagePolicy {
                activation: ActivationPolicy::Recompute,
                weights: WeightPolicy::TwoBw,
            };
            for start in 0..c.len() {
                for end in start + 1..=c.len() {
                    for g in 1u64..=4 {
                        let pol = c.stage_memory_with(start..end, g, tight);
                        let def = c.stage_memory_with(start..end, g, StagePolicy::default());
                        assert!(
                            pol <= def,
                            "stage {start}..{end} g={g}: policy {pol} > default {def}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bisect_margin_brackets_a_threshold() {
        // holds(x) ⇔ x ≤ 0.3: the margin must land just under 0.3.
        let m = bisect_margin(1.0, 12, |x| x <= 0.3);
        assert!(m <= 0.3 && m > 0.29, "margin {m}");
        // Everything holds → the cap is returned outright.
        assert_eq!(bisect_margin(0.8, 12, |_| true), 0.8);
        // Nothing above zero holds → zero.
        assert!(bisect_margin(1.0, 12, |x| x <= 0.0) < 1e-3);
    }
}
