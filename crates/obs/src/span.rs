//! Global span tracer: RAII guards, thread-safe nesting, near-zero cost
//! when disabled.
//!
//! The collector is a process-global `Mutex<Vec<SpanRecord>>` guarded by
//! an `AtomicBool`. When tracing is off, [`span`] returns `None` after a
//! single relaxed load — no clock read, no lock, no allocation — so hot
//! paths (one span per DP solve) can stay instrumented permanently.
//! When on, the guard stamps start/end against a process-wide epoch and
//! pushes one record on drop; nesting depth is tracked per thread so
//! exporters can reconstruct the tree even though records arrive in
//! completion order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span, timestamped in microseconds since the tracer
/// epoch (the first `enable`/span of the process).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `plan.phase1.bisect`.
    pub name: &'static str,
    /// Start, µs since the tracer epoch.
    pub ts_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
    /// Dense per-process thread id (0 = first thread to emit a span).
    pub tid: u64,
    /// Nesting depth on that thread at the time the span opened.
    pub depth: usize,
    /// Optional numeric annotations (e.g. the probed `t_hat`).
    pub args: Vec<(&'static str, f64)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Dense per-process id of the calling thread — shared with the flight
/// recorder so its rows line up with tracer rows in a merged view.
pub(crate) fn current_tid() -> u64 {
    THREAD_TID.with(|t| *t)
}

/// Turn span collection on or off. Spans opened while disabled are
/// never recorded, even if tracing is enabled before they close.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the epoch before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being collected.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Take every span recorded so far, ordered by start time.
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut spans = std::mem::take(&mut *COLLECTOR.lock().unwrap());
    spans.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    spans
}

/// An open span; records itself on drop (or [`finish`]).
///
/// [`finish`]: SpanGuard::finish
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    /// Record into the global collector when the span closes.
    record: bool,
    args: Vec<(&'static str, f64)>,
    done: bool,
}

impl SpanGuard {
    fn open(name: &'static str, record: bool) -> Self {
        if record {
            DEPTH.with(|d| d.set(d.get() + 1));
        }
        Self {
            name,
            start: Instant::now(),
            record,
            args: Vec::new(),
            done: false,
        }
    }

    /// Attach a numeric annotation shown in the trace viewer.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if self.record {
            self.args.push((key, value));
        }
    }

    /// Close the span now and return its duration in seconds.
    pub fn finish(mut self) -> f64 {
        self.close();
        self.start.elapsed().as_secs_f64()
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if !self.record {
            return;
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth - 1);
            depth - 1
        });
        let ts_us = self.start.duration_since(epoch()).as_secs_f64() * 1e6;
        let dur_us = self.start.elapsed().as_secs_f64() * 1e6;
        let record = SpanRecord {
            name: self.name,
            ts_us,
            dur_us,
            tid: THREAD_TID.with(|t| *t),
            depth,
            args: std::mem::take(&mut self.args),
        };
        COLLECTOR.lock().unwrap().push(record);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Open a span if tracing is enabled; `None` (free) otherwise.
#[inline]
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if tracing_enabled() {
        Some(SpanGuard::open(name, true))
    } else {
        None
    }
}

/// Open a span that always measures wall time (for phase clocks whose
/// duration feeds `PlannerStats`), recording only when tracing is on.
#[inline]
pub fn timed(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, tracing_enabled())
}

/// `span!("name")` — open an RAII span for the enclosing scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _madpipe_span = $crate::span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share one global collector, so they run as a single
    // #[test] to avoid cross-test interference under the parallel
    // harness.
    #[test]
    fn tracer_end_to_end() {
        // Disabled: no records, `span` is None.
        set_enabled(false);
        drain_spans();
        assert!(span("off").is_none());
        let t = timed("clock");
        assert!(t.finish() >= 0.0);
        assert!(drain_spans().is_empty(), "disabled spans must not record");

        // Enabled: nesting depth and ordering.
        set_enabled(true);
        {
            let mut outer = SpanGuard::open("outer", true);
            outer.arg("t_hat", 0.25);
            {
                span!("inner");
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            drop(outer);
        }
        // A worker thread gets its own tid.
        std::thread::scope(|s| {
            s.spawn(|| {
                span!("worker");
            });
        });
        set_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        assert_ne!(worker.tid, outer.tid);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(inner.ts_us >= outer.ts_us);
        assert_eq!(outer.args, vec![("t_hat", 0.25)]);
        assert!(spans.iter().all(|s| s.ts_us >= 0.0 && s.dur_us >= 0.0));
    }
}
