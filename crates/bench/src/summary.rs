//! Aggregate statistics backing the paper's prose claims (§5.2): win
//! counts, mean ratios by memory band, prediction-optimism gaps, and
//! planning-time totals.

use std::fmt::Write as _;

use crate::csv::Table;
use crate::grid::{geometric_mean, CellResult};

/// Summary statistics over a set of evaluated cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Cells where both planners produced schedules.
    pub comparable: usize,
    /// … of which MadPipe was strictly faster (>0.1% margin).
    pub madpipe_wins: usize,
    /// … of which PipeDream was strictly faster.
    pub pipedream_wins: usize,
    /// Cells only MadPipe could plan.
    pub only_madpipe: usize,
    /// Cells only PipeDream could plan.
    pub only_pipedream: usize,
    /// Geometric-mean PipeDream/MadPipe ratio over all comparable cells.
    pub overall_ratio: Option<f64>,
    /// Same, restricted to `M < 10` GB (the paper: "consistently over
    /// 20% when the available memory is below 10GB").
    pub tight_ratio: Option<f64>,
    /// Largest single-cell ratio (the paper: "up to two or even three
    /// times slower").
    pub max_ratio: Option<f64>,
    /// Geometric mean of PipeDream's achieved/predicted gap.
    pub pipedream_optimism: Option<f64>,
    /// Geometric mean of MadPipe's achieved/phase-1 gap.
    pub madpipe_optimism: Option<f64>,
    /// Total planning wall-clock (both planners, all cells).
    pub planning_seconds: f64,
    /// DP solves that actually ran across all cells (planner cost).
    pub dp_solves: usize,
    /// Probes answered by cross-probe reuse instead of a solve.
    pub dp_probes_saved: usize,
    /// Memoized DP states created across all cells.
    pub dp_states: u64,
    /// MadPipe plans that passed differential certification.
    pub certified_pass: usize,
    /// MadPipe plans that failed it (checker/replay disagreement).
    pub certified_fail: usize,
    /// Smallest jitter robustness margin over all certified plans.
    pub min_jitter_margin: Option<f64>,
}

/// Compute the summary.
pub fn summarize(results: &[CellResult]) -> Summary {
    let mut s = Summary {
        comparable: 0,
        madpipe_wins: 0,
        pipedream_wins: 0,
        only_madpipe: 0,
        only_pipedream: 0,
        overall_ratio: None,
        tight_ratio: None,
        max_ratio: None,
        pipedream_optimism: None,
        madpipe_optimism: None,
        planning_seconds: results.iter().map(|r| r.planning_seconds).sum(),
        dp_solves: results.iter().map(|r| r.dp_solves()).sum(),
        dp_probes_saved: results.iter().map(|r| r.dp_probes_saved()).sum(),
        dp_states: results.iter().map(|r| r.dp_states()).sum(),
        certified_pass: results.iter().filter(|r| r.certified == Some(true)).count(),
        certified_fail: results
            .iter()
            .filter(|r| r.certified == Some(false))
            .count(),
        min_jitter_margin: results
            .iter()
            .filter(|r| r.certified == Some(true))
            .filter_map(|r| r.jitter_margin)
            .fold(None, |acc: Option<f64>, m| {
                Some(acc.map_or(m, |a| a.min(m)))
            }),
    };
    let mut ratios = Vec::new();
    let mut tight = Vec::new();
    let mut pd_gap = Vec::new();
    let mut mp_gap = Vec::new();
    for r in results {
        match (r.madpipe, r.pipedream) {
            (Some(m), Some(p)) => {
                s.comparable += 1;
                let ratio = p / m;
                if ratio > 1.001 {
                    s.madpipe_wins += 1;
                } else if ratio < 0.999 {
                    s.pipedream_wins += 1;
                }
                ratios.push(Some(ratio));
                if r.cell.m_gb < 10 {
                    tight.push(Some(ratio));
                }
            }
            (Some(_), None) => s.only_madpipe += 1,
            (None, Some(_)) => s.only_pipedream += 1,
            (None, None) => {}
        }
        if let (Some(est), Some(got)) = (r.pipedream_estimate, r.pipedream) {
            pd_gap.push(Some(got / est));
        }
        if let (Some(est), Some(got)) = (r.madpipe_estimate, r.madpipe) {
            mp_gap.push(Some(got / est));
        }
    }
    s.max_ratio = ratios
        .iter()
        .flatten()
        .copied()
        .fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        });
    s.overall_ratio = geometric_mean(ratios);
    s.tight_ratio = geometric_mean(tight);
    s.pipedream_optimism = geometric_mean(pd_gap);
    s.madpipe_optimism = geometric_mean(mp_gap);
    s
}

/// Render the summary as text + a one-row CSV.
pub fn generate(results: &[CellResult]) -> (String, Table) {
    let s = summarize(results);
    let fmt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
    let mut text = String::new();
    let _ = writeln!(text, "Summary over {} cells:", results.len());
    let _ = writeln!(
        text,
        "  comparable {} | MadPipe wins {} | PipeDream wins {} | only-MadPipe {} | only-PipeDream {}",
        s.comparable, s.madpipe_wins, s.pipedream_wins, s.only_madpipe, s.only_pipedream
    );
    let _ = writeln!(
        text,
        "  PipeDream/MadPipe period ratio: gmean {} (M<10GB: {}), max {}",
        fmt(s.overall_ratio),
        fmt(s.tight_ratio),
        fmt(s.max_ratio)
    );
    let _ = writeln!(
        text,
        "  prediction gaps (achieved/predicted, gmean): PipeDream {}, MadPipe {}",
        fmt(s.pipedream_optimism),
        fmt(s.madpipe_optimism)
    );
    let _ = writeln!(text, "  total planning time: {:.1} s", s.planning_seconds);
    let _ = writeln!(
        text,
        "  planner cost: {} DP solves ({} probes saved by reuse), {} states",
        s.dp_solves, s.dp_probes_saved, s.dp_states
    );
    let _ = writeln!(
        text,
        "  certification: {} passed, {} failed, min jitter margin {}",
        s.certified_pass,
        s.certified_fail,
        fmt(s.min_jitter_margin)
    );

    let mut table = Table::new(&[
        "cells",
        "comparable",
        "madpipe_wins",
        "pipedream_wins",
        "only_madpipe",
        "only_pipedream",
        "ratio_gmean",
        "ratio_gmean_tight",
        "ratio_max",
        "pipedream_optimism",
        "madpipe_optimism",
        "planning_seconds",
        "dp_solves",
        "dp_probes_saved",
        "dp_states",
        "certified_pass",
        "certified_fail",
        "min_jitter_margin",
    ]);
    table.push(vec![
        results.len().to_string(),
        s.comparable.to_string(),
        s.madpipe_wins.to_string(),
        s.pipedream_wins.to_string(),
        s.only_madpipe.to_string(),
        s.only_pipedream.to_string(),
        fmt(s.overall_ratio),
        fmt(s.tight_ratio),
        fmt(s.max_ratio),
        fmt(s.pipedream_optimism),
        fmt(s.madpipe_optimism),
        format!("{:.1}", s.planning_seconds),
        s.dp_solves.to_string(),
        s.dp_probes_saved.to_string(),
        s.dp_states.to_string(),
        s.certified_pass.to_string(),
        s.certified_fail.to_string(),
        fmt(s.min_jitter_margin),
    ]);
    (text, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Cell;

    fn cell(m: u64, mp: Option<f64>, pd: Option<f64>) -> CellResult {
        CellResult {
            cell: Cell {
                network: "x".into(),
                p: 4,
                m_gb: m,
                beta_gb: 12.0,
                policy: Default::default(),
            },
            sequential: 1.0,
            madpipe_estimate: mp.map(|x| x * 0.9),
            madpipe: mp,
            pipedream_estimate: pd.map(|x| x * 0.5),
            pipedream: pd,
            planning_seconds: 1.0,
            stats: crate::grid::test_stats(5, 2, 100),
            certified: mp.map(|_| true),
            jitter_margin: mp.map(|_| 0.1),
        }
    }

    #[test]
    fn counts_and_means() {
        let results = vec![
            cell(3, Some(0.1), Some(0.2)),  // MadPipe wins, tight
            cell(12, Some(0.1), Some(0.1)), // tie
            cell(12, Some(0.1), None),      // only MadPipe
            cell(12, None, Some(0.1)),      // only PipeDream
        ];
        let s = summarize(&results);
        assert_eq!(s.comparable, 2);
        assert_eq!(s.madpipe_wins, 1);
        assert_eq!(s.pipedream_wins, 0);
        assert_eq!(s.only_madpipe, 1);
        assert_eq!(s.only_pipedream, 1);
        assert_eq!(s.max_ratio, Some(2.0));
        assert!((s.tight_ratio.unwrap() - 2.0).abs() < 1e-12);
        assert!((s.pipedream_optimism.unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.planning_seconds, 4.0);
        assert_eq!(s.dp_solves, 20);
        assert_eq!(s.dp_probes_saved, 8);
        assert_eq!(s.dp_states, 400);
        assert_eq!(s.certified_pass, 3);
        assert_eq!(s.certified_fail, 0);
        assert!((s.min_jitter_margin.unwrap() - 0.1).abs() < 1e-12);
        let (text, table) = generate(&results);
        assert!(text.contains("MadPipe wins 1"));
        assert!(text.contains("certification: 3 passed"));
        assert_eq!(table.len(), 1);
    }
}
