//! Distributed trace context: process-unique 64-bit ids and wall-clock
//! timestamps shared across daemons.
//!
//! A request carries a `trace` id (constant across every hop) and a
//! `parent` span id (the id of the hop that forwarded it). Ids are
//! 64-bit, rendered as 16 lowercase hex digits on the wire, and drawn
//! from a SplitMix64 stream seeded per process from the wall clock and
//! the pid — collisions across a cluster are as unlikely as a 64-bit
//! random collision, and id 0 is reserved to mean "absent".
//!
//! Flight-recorder events are stamped with [`now_unix_us`] — wall-clock
//! microseconds since the UNIX epoch — rather than a process-local
//! monotonic epoch, so events from different daemons merge onto one
//! timeline (`madpipe trace-merge` rebases the merged trace to its
//! earliest event).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// SplitMix64 finalizer: bijective, so distinct counter values can
/// never collide within one process.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static SEED: OnceLock<u64> = OnceLock::new();
static COUNTER: AtomicU64 = AtomicU64::new(1);

fn seed() -> u64 {
    *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        mix(nanos ^ (u64::from(std::process::id()) << 32))
    })
}

/// A fresh nonzero 64-bit id, unique within this process and
/// collision-resistant across processes.
pub fn fresh_id() -> u64 {
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = mix(seed().wrapping_add(n));
        if id != 0 {
            return id;
        }
    }
}

/// Wire form of an id: 16 lowercase hex digits.
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a wire id; `None` for anything but 1–16 hex digits or for the
/// reserved zero id.
pub fn parse_hex_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Wall-clock microseconds since the UNIX epoch, as f64 (Chrome's
/// native trace unit). Exact to the microsecond until the year ~2255.
pub fn now_unix_us() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64() * 1e6)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_unique_and_round_trip_hex() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "fresh_id repeated {id:#x}");
            let hex = hex_id(id);
            assert_eq!(hex.len(), 16);
            assert_eq!(parse_hex_id(&hex), Some(id));
        }
    }

    #[test]
    fn hex_parsing_rejects_garbage() {
        assert_eq!(parse_hex_id(""), None);
        assert_eq!(parse_hex_id("0000000000000000"), None, "zero is reserved");
        assert_eq!(parse_hex_id("xyz"), None);
        assert_eq!(parse_hex_id("11112222333344445"), None, "too long");
        assert_eq!(parse_hex_id("ff"), Some(0xff), "short ids parse");
    }

    #[test]
    fn unix_timestamps_advance() {
        let a = now_unix_us();
        let b = now_unix_us();
        assert!(a > 1e15, "epoch-µs in 2026 is ~1.7e15, got {a}");
        assert!(b >= a);
    }
}
