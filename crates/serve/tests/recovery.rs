//! Warm-restart drills for the durable plan journal: a drained (or
//! crashed) daemon restarts with its cache rebuilt from the journal,
//! serves the warmed plans byte-identical to what it served before,
//! tolerates a torn tail from a mid-append crash, and reports the
//! recovery counts in `health`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use madpipe_core::{madpipe_plan, PlannerConfig};
use madpipe_json::{ToJson, Value};
use madpipe_model::{Chain, Layer, Platform};
use madpipe_serve::{ServeConfig, Server};

/// Same deterministic instance family as the integration suite.
fn instance(seed: u64) -> (Chain, Platform) {
    let layers = (0..6)
        .map(|i| {
            let x = ((seed * 37 + i * 11) % 17 + 1) as f64;
            Layer::new(
                format!("l{i}"),
                1e-3 * x,
                2e-3 * x,
                1 << 20,
                (4 + (i + seed) % 4) << 20,
            )
        })
        .collect();
    let chain = Chain::new(format!("net{seed}"), 1 << 20, layers).unwrap();
    let platform = Platform::gb(4, 2, 12.0).unwrap();
    (chain, platform)
}

fn plan_line(chain: &Chain, platform: &Platform) -> String {
    Value::Object(vec![
        ("cmd".into(), Value::Str("plan".into())),
        ("chain".into(), chain.to_json()),
        (
            "platform".into(),
            Value::Object(vec![
                ("n_gpus".into(), Value::UInt(platform.n_gpus as u64)),
                ("memory_bytes".into(), Value::UInt(platform.memory_bytes)),
                ("bandwidth_bytes".into(), Value::Float(platform.bandwidth)),
            ]),
        ),
    ])
    .to_string_compact()
}

/// One round trip on a fresh connection, returning the *raw* response
/// line — byte identity is the whole point here.
fn raw_roundtrip(addr: std::net::SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    response.trim_end().to_string()
}

fn start_with_journal(journal: &str) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_entries: 64,
        timeout: Duration::from_secs(60),
        queue_depth: 64,
        journal: Some(journal.to_string()),
        ..ServeConfig::default()
    })
    .expect("bind")
}

fn journal_stats(addr: std::net::SocketAddr) -> Value {
    let v = Value::parse(&raw_roundtrip(addr, r#"{"cmd":"health"}"#)).unwrap();
    v.field("health")
        .expect("health body")
        .field("journal")
        .expect("journal stats in health")
        .clone()
}

fn uint(v: &Value, key: &str) -> u64 {
    v.field(key).unwrap().as_u64().unwrap()
}

#[test]
fn restart_serves_journal_warmed_plans_byte_identical_despite_a_torn_tail() {
    let journal = std::env::temp_dir()
        .join(format!("madpipe-recovery-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&journal);

    // First life: plan two instances fresh, capture the *cached* served
    // bytes (the second ask answers from cache — exactly what a warmed
    // restart must reproduce).
    let lines: Vec<String> = (0..2)
        .map(|s| {
            let (c, p) = instance(s);
            plan_line(&c, &p)
        })
        .collect();
    let offline_bits: Vec<u64> = (0..2)
        .map(|s| {
            let (c, p) = instance(s);
            madpipe_plan(&c, &p, &PlannerConfig::default())
                .expect("offline plan")
                .period()
                .to_bits()
        })
        .collect();
    let first_life: Vec<String> = {
        let server = start_with_journal(&journal);
        let addr = server.local_addr();
        for line in &lines {
            let fresh = Value::parse(&raw_roundtrip(addr, line)).unwrap();
            assert_eq!(fresh.field("ok").unwrap(), &Value::Bool(true));
            assert_eq!(fresh.field("cached").unwrap(), &Value::Bool(false));
        }
        let stats = journal_stats(addr);
        assert_eq!(uint(&stats, "appended"), 2, "two fresh plans journaled");
        assert_eq!(uint(&stats, "errors"), 0);
        let cached = lines.iter().map(|l| raw_roundtrip(addr, l)).collect();
        server.shutdown();
        server.join(); // compacts the journal
        cached
    };
    for (response, bits) in first_life.iter().zip(&offline_bits) {
        let v = Value::parse(response).unwrap();
        assert_eq!(v.field("cached").unwrap(), &Value::Bool(true));
        let served = v
            .field("plan")
            .unwrap()
            .field("period")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(served.to_bits(), *bits, "served == offline, bit for bit");
    }

    // Crash injection: a mid-append power cut leaves half a frame at
    // the tail. Replay must keep every intact record and count the tear.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        f.write_all(b"1234 deadbeefdeadbeef {\"key\":\"torn")
            .unwrap();
    }

    // Second life: the cache is warmed from the journal before the
    // listener goes live — the first ask is already a hit, and the
    // response bytes equal the first life's cached response exactly.
    let server = start_with_journal(&journal);
    let addr = server.local_addr();
    let stats = journal_stats(addr);
    assert_eq!(uint(&stats, "recovered"), 2, "both compacted records");
    assert_eq!(uint(&stats, "applied"), 2);
    assert!(uint(&stats, "torn") >= 1, "the torn tail is counted");
    assert_eq!(
        stats.field("path").unwrap().as_str().unwrap(),
        journal,
        "health names the journal file"
    );
    for (line, expected) in lines.iter().zip(&first_life) {
        let warmed = raw_roundtrip(addr, line);
        assert_eq!(
            &warmed, expected,
            "journal-warmed response must be byte-identical to the pre-crash one"
        );
    }
    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn compaction_keeps_replay_equal_to_the_live_cache() {
    let journal = std::env::temp_dir()
        .join(format!("madpipe-compact-{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&journal);

    // Ask the same instance three times across two lives: the journal
    // must not accumulate duplicate records (drain compacts down to the
    // live cache), and the third life still warms to a hit.
    let (c, p) = instance(7);
    let line = plan_line(&c, &p);
    for life in 0..3 {
        let server = start_with_journal(&journal);
        let addr = server.local_addr();
        let v = Value::parse(&raw_roundtrip(addr, &line)).unwrap();
        assert_eq!(v.field("ok").unwrap(), &Value::Bool(true));
        assert_eq!(
            v.field("cached").unwrap(),
            &Value::Bool(life > 0),
            "life {life}: only the very first ask computes"
        );
        server.shutdown();
        server.join();
        let text = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(
            text.lines().count(),
            1,
            "life {life}: compaction keeps exactly the one live record"
        );
    }
    let _ = std::fs::remove_file(&journal);
}
