//! The planning daemon: an event-driven connection reactor (one thread,
//! nonblocking sockets, readiness polling — see [`crate::reactor`]), a
//! bounded worker pool that owns the DP sessions, a supervisor that
//! respawns workers that die, and an optional gossip thread that warms
//! peer caches in cluster mode.
//!
//! Life of a `plan` request:
//!
//! 1. The reactor parses and validates the line; anything unusable is
//!    answered with a structured error and the connection stays open.
//!    Lines are bounded at [`MAX_LINE_BYTES`]; an oversized line is
//!    rejected *while it streams in* (the buffer never grows past the
//!    bound) and the rest of it is discarded up to the next newline.
//!    Many requests may be pipelined on one connection; responses come
//!    back in request order.
//! 2. The canonical key probes the [`PlanCache`]; a hit is answered
//!    immediately (`cached:true`).
//! 3. A miss becomes a [`Job`] on the bounded queue, ordered
//!    earliest-deadline-first — under pressure the work most likely to
//!    still matter runs first. A full queue is an immediate
//!    `overloaded` reject, and a CoDel-style admission gate
//!    ([`OverloadGate`]) starts shedding probabilistically
//!    (`serve.shed.overload`) when queue sojourn has exceeded its
//!    target for a sustained window — the server sheds load instead of
//!    building a backlog whose every entry will miss its deadline.
//! 4. A worker picks the job up — dropping it unrun with a structured
//!    `timeout` (`serve.shed.expired`) if its deadline already passed
//!    while queued — builds (or reuses) a [`ProbeSession`]
//!    for the instance and plans. Consecutive same-instance jobs are
//!    served through the same warm session, which is both faster and —
//!    because probes are pure functions of (chain, platform, T̂) —
//!    bit-identical to a cold `madpipe plan`. Finished replies ring the
//!    reactor's waker so the response leaves immediately.
//! 5. The slot waits in the connection's pipeline with the request
//!    deadline; if the worker misses it, the client gets a `timeout`
//!    error and the worker result (if any) still lands in the cache.
//!
//! A `replan` request runs the same pipeline twice — once for the
//! healthy instance, once for the fault's survivor — and reports the
//! throughput delta; both plans land in (or come from) the same cache.
//!
//! Cluster mode: [`ServeConfig::peers`] (or [`Server::add_peer`]) names
//! sibling daemons; a gossip thread periodically ships this daemon's
//! hottest canonical keys + plans to each peer (see [`crate::gossip`]),
//! so a plan computed anywhere in the cluster soon serves as a cache
//! hit everywhere. Peers apply entries with `{"cmd":"gossip",…}` —
//! plans gossip verbatim as rendered, so a warmed hit stays
//! f64-bit-identical to the origin daemon's (and thus to offline)
//! planning.
//!
//! Supervision: a planner panic is caught per job. The poisoned request
//! is answered with a structured `internal` error (counter
//! `serve.panics`), then the panic is *resumed* so the worker thread
//! tears down its possibly-corrupt session state; the supervisor thread
//! observes the death and respawns a fresh worker
//! (`serve.workers.respawned`). One poisoned request can therefore never
//! take the pool down, and `{"cmd":"health"}` reports live worker count
//! and queue depth for external monitors.
//!
//! Draining: `shutdown()` (or a `{"cmd":"shutdown"}` request, or
//! SIGTERM/SIGINT via [`install_signal_handlers`]) flips one flag. The
//! reactor stops accepting, retires every in-flight slot, flushes and
//! closes its connections; closing the job queue lets the workers
//! drain it and exit, and the supervisor and gossip threads follow them
//! out. `join()` then returns — no request is abandoned mid-write.
//!
//! Crash recovery: with [`ServeConfig::journal`] set, every freshly
//! computed plan is appended to a checksummed journal
//! ([`crate::journal`]) and replayed into the cache on the next start,
//! so even a `SIGKILL`ed daemon comes back warm, serving byte-identical
//! plans. A clean drain compacts the journal down to the live cache.

use std::collections::BinaryHeap;
use std::net::{SocketAddr, TcpListener};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use madpipe_core::{madpipe_plan_with_session, ProbeSession};
use madpipe_json::Value;
use madpipe_obs::Registry;

use crate::cache::PlanCache;
use crate::protocol::{plan_to_json, PlanRequest, ServeError};
use crate::reactor::{reactor_loop, wake_pair, Waker};

/// Daemon configuration (the CLI's `--addr/--threads/--cache-entries/
/// --timeout-ms` flags map 1:1 onto these fields).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4835` (`:0` picks a free port).
    pub addr: String,
    /// Planner worker threads.
    pub threads: usize,
    /// Total plan-cache capacity (0 disables the cache).
    pub cache_entries: usize,
    /// Per-request deadline, from parse to response.
    pub timeout: Duration,
    /// Worker queue depth; 0 means `max(4 × threads, 64)` — at least
    /// two connections' worth of deep pipelining (the reactor allows
    /// 256 requests in flight per connection), so a single pipelined
    /// client's cold burst is queued, not rejected as overloaded.
    pub queue_depth: usize,
    /// Chaos hook for the test harness: when set, a plan whose chain
    /// name contains this marker makes the worker panic *inside* the
    /// planning path, exercising panic isolation and supervised respawn.
    /// `None` (the default, and the CLI's only setting) disables it.
    pub panic_marker: Option<String>,
    /// Sibling daemon addresses to gossip hot cache entries to
    /// (cluster mode). Empty disables gossip; [`Server::add_peer`]
    /// extends the set at runtime.
    pub peers: Vec<String>,
    /// How often the gossip thread ships its hottest entries.
    pub gossip_interval: Duration,
    /// How many of the hottest cache entries each gossip round ships.
    pub gossip_entries: usize,
    /// Where to dump the flight recorder (JSONL) when the daemon drains
    /// or a worker panics. `None` disables post-mortem dumps; the ring
    /// still records (it is always on), it just never reaches disk.
    pub flight_dump: Option<String>,
    /// Durable plan journal path (`--journal`). Every freshly computed
    /// plan is appended; on startup the journal is replayed into the
    /// cache so a crashed daemon restarts warm. `None` disables.
    pub journal: Option<String>,
    /// Approximate plan-cache byte budget on top of the entry bound
    /// (0 = entries only). A plan larger than the whole budget is
    /// served uncached rather than admitted.
    pub cache_bytes: usize,
    /// Overload-gate queue-sojourn target: once the *minimum* queue
    /// wait over a [`shed_window`](ServeConfig::shed_window) stays
    /// above this, new work is shed probabilistically until the queue
    /// recovers. Zero (the default) derives `min(timeout / 4, 1 s)`.
    pub shed_target: Duration,
    /// How long sojourn must stay above target before shedding starts
    /// (and the cadence at which the gate re-evaluates).
    pub shed_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4835".into(),
            threads: 2,
            cache_entries: 256,
            timeout: Duration::from_secs(30),
            queue_depth: 0,
            panic_marker: None,
            peers: Vec::new(),
            gossip_interval: Duration::from_millis(500),
            gossip_entries: 8,
            flight_dump: None,
            journal: None,
            cache_bytes: 0,
            shed_target: Duration::ZERO,
            shed_window: Duration::from_millis(100),
        }
    }
}

/// Hard bound on one request line. A hostile client streaming an endless
/// line is rejected as soon as the buffer crosses this, long before an
/// allocation worth worrying about; 1 MiB comfortably fits any real
/// instance (a 64k-layer chain is itself rejected by the planner).
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

/// How often idle loops re-check the drain flag.
pub(crate) const POLL: Duration = Duration::from_millis(50);

pub(crate) type PlanOutcome = Result<(Arc<Value>, bool), ServeError>;

pub(crate) struct Job {
    pub(crate) req: Box<PlanRequest>,
    pub(crate) deadline: Instant,
    pub(crate) reply: SyncSender<PlanOutcome>,
    /// Distributed trace id (0 = untraced request).
    pub(crate) trace: u64,
    /// The request span's id — parent of the worker/DP spans.
    pub(crate) span: u64,
    /// When the reactor queued the job, for the queue-wait span.
    pub(crate) enqueued: Instant,
}

/// The bounded job queue, ordered earliest-deadline-first (FIFO within
/// a deadline via a monotone sequence number, so equal-deadline bursts
/// keep arrival order). Replaces the old FIFO channel: under overload a
/// FIFO burns worker time on the *oldest* work — exactly the requests
/// whose deadlines expire first — while EDF runs what can still make it.
///
/// Closing the queue (reactor exit) wakes every blocked worker; they
/// drain the remaining jobs and return, preserving the old
/// disconnect-on-drain semantics.
pub(crate) struct DeadlineQueue {
    inner: Mutex<QueueInner>,
    avail: Condvar,
    capacity: usize,
}

struct QueueInner {
    heap: BinaryHeap<QueuedJob>,
    closed: bool,
    seq: u64,
}

struct QueuedJob {
    job: Job,
    seq: u64,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    /// `BinaryHeap` is a max-heap: reverse both fields so the earliest
    /// deadline (then the earliest arrival) surfaces first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .job
            .deadline
            .cmp(&self.job.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

impl DeadlineQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                heap: BinaryHeap::new(),
                closed: false,
                seq: 0,
            }),
            avail: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue unless the queue is full or closed (the job comes back
    /// so the caller can answer its client).
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = lock_unpoisoned(&self.inner);
        if q.closed || q.heap.len() >= self.capacity {
            return Err(job);
        }
        let seq = q.seq;
        q.seq += 1;
        q.heap.push(QueuedJob { job, seq });
        drop(q);
        self.avail.notify_one();
        Ok(())
    }

    /// Block for the earliest-deadline job; `None` once the queue is
    /// closed *and* empty — the worker-drain signal.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut q = lock_unpoisoned(&self.inner);
        loop {
            if let Some(next) = q.heap.pop() {
                return Some(next.job);
            }
            if q.closed {
                return None;
            }
            q = self.avail.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking pop — the worker lookahead.
    pub(crate) fn try_pop(&self) -> Option<Job> {
        lock_unpoisoned(&self.inner).heap.pop().map(|q| q.job)
    }

    /// Stop admitting and wake every blocked worker.
    pub(crate) fn close(&self) {
        lock_unpoisoned(&self.inner).closed = true;
        self.avail.notify_all();
    }
}

/// CoDel-style sojourn-time admission gate. Workers report every job's
/// queue wait at dequeue ([`OverloadGate::observe`]); when the *minimum*
/// wait over a whole window exceeds the target — i.e. even the luckiest
/// job waited too long, so the queue is persistently, not transiently,
/// full — the gate flips to shedding and the reactor drops a growing
/// fraction of new plan misses with a structured `overloaded` error
/// (`serve.shed.overload`) instead of queueing work that would expire.
/// The min-over-window statistic is CoDel's: it ignores bursts that
/// drain, reacts only to standing queues.
pub(crate) struct OverloadGate {
    target: Duration,
    window: Duration,
    /// Reactor fast path: one relaxed load while healthy.
    shedding: AtomicBool,
    state: Mutex<GateState>,
}

struct GateState {
    window_start: Option<Instant>,
    min_sojourn: Duration,
    /// Consecutive windows above target — drives the shed ramp.
    bad_windows: u32,
    /// xorshift64 state for the probabilistic drop.
    rng: u64,
}

impl OverloadGate {
    pub(crate) fn new(target: Duration, window: Duration) -> Self {
        Self {
            target,
            window,
            shedding: AtomicBool::new(false),
            state: Mutex::new(GateState {
                window_start: None,
                min_sojourn: Duration::MAX,
                bad_windows: 0,
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    /// Record one job's queue sojourn (called by workers at dequeue).
    pub(crate) fn observe(&self, sojourn: Duration) {
        let now = Instant::now();
        let mut s = lock_unpoisoned(&self.state);
        match s.window_start {
            None => {
                s.window_start = Some(now);
                s.min_sojourn = sojourn;
            }
            Some(t0) => {
                s.min_sojourn = s.min_sojourn.min(sojourn);
                if now.duration_since(t0) >= self.window {
                    let above = s.min_sojourn > self.target;
                    if above {
                        s.bad_windows += 1;
                    } else {
                        s.bad_windows = 0;
                    }
                    self.shedding.store(above, Ordering::Relaxed);
                    s.window_start = Some(now);
                    s.min_sojourn = sojourn;
                }
            }
        }
    }

    /// Admission check for a new plan miss. `false` = shed it now.
    pub(crate) fn admit(&self, queue_depth: usize) -> bool {
        if queue_depth == 0 {
            // An empty queue cannot be overloaded, whatever the last
            // window said — clears stale shedding after a storm ends.
            self.shedding.store(false, Ordering::Relaxed);
            return true;
        }
        if !self.shedding.load(Ordering::Relaxed) {
            return true;
        }
        let mut s = lock_unpoisoned(&self.state);
        // Ramp the drop probability with how long the queue has been
        // standing: 25% after one bad window, up to 90% — admitted
        // traffic keeps probing whether the queue recovered.
        let p = (0.25 * f64::from(s.bad_windows)).min(0.9);
        s.rng ^= s.rng << 13;
        s.rng ^= s.rng >> 7;
        s.rng ^= s.rng << 17;
        let draw = (s.rng >> 11) as f64 / (1u64 << 53) as f64;
        draw >= p
    }
}

pub(crate) struct Ctx {
    pub(crate) draining: AtomicBool,
    pub(crate) registry: Registry,
    pub(crate) cache: PlanCache,
    pub(crate) timeout: Duration,
    /// Configured worker count (the supervisor keeps this many alive).
    pub(crate) threads: usize,
    pub(crate) queue_capacity: usize,
    /// Jobs accepted onto the queue and not yet picked up by a worker.
    pub(crate) queue_depth: AtomicUsize,
    /// Workers currently inside their loop (RAII-tracked, so a panicking
    /// worker decrements on unwind).
    pub(crate) workers_alive: AtomicUsize,
    pub(crate) panic_marker: Option<String>,
    /// Rings the reactor out of its poll when a worker reply lands.
    pub(crate) waker: Waker,
    /// Gossip targets (cluster peers); extendable at runtime.
    pub(crate) peers: Mutex<Vec<String>>,
    pub(crate) gossip_interval: Duration,
    pub(crate) gossip_entries: usize,
    /// Post-mortem flight-recorder dump path (panic and drain).
    pub(crate) flight_dump: Option<String>,
    /// Overload admission gate (always present; inert until sojourn
    /// observations cross its target).
    pub(crate) gate: OverloadGate,
    /// Durable plan journal (crash recovery); `None` when not configured.
    pub(crate) journal: Option<crate::journal::Journal>,
}

impl Ctx {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || term_requested()
    }
}

/// Lock that shrugs off poisoning: a worker that panicked while holding
/// a supervised lock must not cascade the panic into every other thread
/// touching it. All guarded state here stays consistent across unwinds
/// (counters, maps with no partial multi-step updates).
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running daemon. Dropping it without `join()` leaves the threads
/// running; call [`Server::shutdown`] then [`Server::join`] to drain.
pub struct Server {
    local_addr: SocketAddr,
    ctx: Arc<Ctx>,
    reactor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start accepting. Returns once the listener is live —
    /// a client may connect as soon as this returns.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (waker, wake_rx) = wake_pair()?;
        let threads = cfg.threads.max(1);
        let depth = if cfg.queue_depth == 0 {
            (threads * 4).max(64)
        } else {
            cfg.queue_depth
        };
        let registry = Registry::new();
        let cache = PlanCache::with_byte_budget(cfg.cache_entries, cfg.cache_bytes);

        // Warm restart: replay the journal into the cache before the
        // listener goes live, so the very first request after a crash
        // can already hit. Records are exactly as rendered, so warmed
        // hits are byte-identical to what the dead daemon served.
        let journal = match &cfg.journal {
            Some(path) => {
                let j = crate::journal::Journal::open(path)?;
                let (entries, stats) = j.replay();
                let mut applied = 0u64;
                for (key, plan) in entries {
                    let (inserted, evicted) = cache.warm(key, plan);
                    applied += u64::from(inserted);
                    registry.add("serve.cache.evictions", evicted);
                }
                registry.add("serve.journal.recovered", stats.recovered as u64);
                registry.add("serve.journal.torn", stats.torn as u64);
                registry.add("serve.journal.applied", applied);
                Some(j)
            }
            None => None,
        };

        let shed_target = if cfg.shed_target.is_zero() {
            (cfg.timeout / 4).min(Duration::from_secs(1))
        } else {
            cfg.shed_target
        };
        let ctx = Arc::new(Ctx {
            draining: AtomicBool::new(false),
            registry,
            cache,
            timeout: cfg.timeout,
            threads,
            queue_capacity: depth,
            queue_depth: AtomicUsize::new(0),
            workers_alive: AtomicUsize::new(0),
            panic_marker: cfg.panic_marker.clone(),
            waker,
            peers: Mutex::new(cfg.peers.clone()),
            gossip_interval: cfg.gossip_interval,
            gossip_entries: cfg.gossip_entries,
            flight_dump: cfg.flight_dump.clone(),
            gate: OverloadGate::new(shed_target, cfg.shed_window),
            journal,
        });

        let jobs = Arc::new(DeadlineQueue::new(depth));
        let workers: Vec<JoinHandle<()>> =
            (0..threads).map(|i| spawn_worker(i, &ctx, &jobs)).collect();

        let supervisor = {
            let ctx = Arc::clone(&ctx);
            let jobs = Arc::clone(&jobs);
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervisor_loop(&ctx, &jobs, workers))
                .expect("spawn supervisor")
        };

        let reactor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("serve-reactor".into())
                .spawn(move || reactor_loop(listener, ctx, jobs, wake_rx))
                .expect("spawn reactor")
        };

        let gossip = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("serve-gossip".into())
                .spawn(move || crate::gossip::gossip_loop(&ctx))
                .expect("spawn gossip")
        };

        Ok(Server {
            local_addr,
            ctx,
            reactor: Some(reactor),
            supervisor: Some(supervisor),
            gossip: Some(gossip),
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics registry (counters named `serve.*`).
    pub fn registry(&self) -> &Registry {
        &self.ctx.registry
    }

    /// Number of workers currently alive (the supervisor restores this
    /// to the configured count after a worker death).
    pub fn workers_alive(&self) -> usize {
        self.ctx.workers_alive.load(Ordering::SeqCst)
    }

    /// Add a gossip peer at runtime (cluster membership is often only
    /// known after every daemon has bound its port).
    pub fn add_peer(&self, addr: impl Into<String>) {
        lock_unpoisoned(&self.ctx.peers).push(addr.into());
    }

    /// Ask the server to drain: stop accepting, finish in-flight
    /// requests, let the workers empty the queue.
    pub fn shutdown(&self) {
        self.ctx.draining.store(true, Ordering::SeqCst);
        self.ctx.waker.wake();
    }

    /// True once a drain was requested (by [`Server::shutdown`], a
    /// `shutdown` request, or a signal).
    pub fn is_draining(&self) -> bool {
        self.ctx.draining()
    }

    /// Block until the reactor (and with it every connection), every
    /// worker, the supervisor and the gossip thread have exited. Call
    /// [`Server::shutdown`] first (or send `shutdown`).
    pub fn join(mut self) {
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.gossip.take() {
            let _ = h.join();
        }
        // Drain compaction: rewrite the journal down to what the cache
        // actually holds — replay on the next start then costs one
        // cache-full, not one append-history-full.
        if let Some(j) = &self.ctx.journal {
            let live = self.ctx.cache.hottest(usize::MAX);
            if j.compact(&live).is_ok() {
                self.ctx.registry.inc("serve.journal.compactions");
            }
        }
        // Post-mortem artifact: whatever the ring still holds when the
        // daemon exits (SIGTERM drain, chaos kill) lands on disk. Worker
        // panics dump earlier, at the panic site; this drain of the ring
        // then appends nothing new for those events.
        if let Some(path) = &self.ctx.flight_dump {
            let _ = madpipe_obs::flight::write_dump(path);
        }
    }
}

/// Decrements the live-worker gauge however the worker exits — return
/// or unwind.
struct AliveGuard<'a>(&'a AtomicUsize);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn spawn_worker(id: usize, ctx: &Arc<Ctx>, jobs: &Arc<DeadlineQueue>) -> JoinHandle<()> {
    let ctx = Arc::clone(ctx);
    let jobs = Arc::clone(jobs);
    std::thread::Builder::new()
        .name(format!("serve-worker-{id}"))
        .spawn(move || {
            ctx.workers_alive.fetch_add(1, Ordering::SeqCst);
            let _alive = AliveGuard(&ctx.workers_alive);
            worker_loop(&ctx, &jobs);
        })
        .expect("spawn worker")
}

/// Keep the pool at full strength: join workers as they finish; a panic
/// death (join `Err`) is replaced with a fresh worker unless the server
/// is draining. Exits once every worker has left cleanly (the job queue
/// closed and drained).
fn supervisor_loop(ctx: &Arc<Ctx>, jobs: &Arc<DeadlineQueue>, mut workers: Vec<JoinHandle<()>>) {
    let mut next_id = workers.len();
    while !workers.is_empty() {
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let crashed = workers.remove(i).join().is_err();
                if crashed {
                    ctx.registry.inc("serve.workers.respawned");
                    if !ctx.draining() {
                        workers.push(spawn_worker(next_id, ctx, jobs));
                        next_id += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        std::thread::sleep(POLL);
    }
}

/// The `health` payload: supervision state an external monitor needs to
/// decide whether the daemon is healthy, degraded or draining.
pub(crate) fn health_value(ctx: &Arc<Ctx>) -> Value {
    let mut fields = vec![
        ("draining".into(), Value::Bool(ctx.draining())),
        (
            "workers_alive".into(),
            Value::UInt(ctx.workers_alive.load(Ordering::SeqCst) as u64),
        ),
        ("workers_configured".into(), Value::UInt(ctx.threads as u64)),
        (
            "queue_depth".into(),
            Value::UInt(ctx.queue_depth.load(Ordering::SeqCst) as u64),
        ),
        (
            "queue_capacity".into(),
            Value::UInt(ctx.queue_capacity as u64),
        ),
        ("cached_plans".into(), Value::UInt(ctx.cache.len() as u64)),
        (
            "panics".into(),
            Value::UInt(ctx.registry.counter("serve.panics")),
        ),
        (
            "respawns".into(),
            Value::UInt(ctx.registry.counter("serve.workers.respawned")),
        ),
        // Flight-recorder loss plus the request/cache counters `madpipe
        // top` turns into per-daemon req/s and hit-ratio columns.
        (
            "events_dropped".into(),
            Value::UInt(madpipe_obs::flight::dropped()),
        ),
        (
            "requests".into(),
            Value::UInt(ctx.registry.counter("serve.requests")),
        ),
        (
            "cache_hits".into(),
            Value::UInt(ctx.registry.counter("serve.cache.hits")),
        ),
        (
            "cache_misses".into(),
            Value::UInt(ctx.registry.counter("serve.cache.misses")),
        ),
        // Overload accounting: what the daemon refused to do, and why.
        (
            "shed_expired".into(),
            Value::UInt(ctx.registry.counter("serve.shed.expired")),
        ),
        (
            "shed_overload".into(),
            Value::UInt(ctx.registry.counter("serve.shed.overload")),
        ),
        (
            "rejects".into(),
            Value::UInt(ctx.registry.counter("serve.rejects")),
        ),
        // Accept-loop distress: error count and total backoff slept.
        (
            "accept_errors".into(),
            Value::UInt(ctx.registry.counter("serve.accept.errors")),
        ),
        (
            "accept_backoff_ms".into(),
            Value::UInt(ctx.registry.counter("serve.accept.backoff_ms")),
        ),
    ];
    if let Some(j) = &ctx.journal {
        fields.push((
            "journal".into(),
            Value::Object(vec![
                ("path".into(), Value::Str(j.path().to_string())),
                (
                    "recovered".into(),
                    Value::UInt(ctx.registry.counter("serve.journal.recovered")),
                ),
                (
                    "applied".into(),
                    Value::UInt(ctx.registry.counter("serve.journal.applied")),
                ),
                (
                    "torn".into(),
                    Value::UInt(ctx.registry.counter("serve.journal.torn")),
                ),
                (
                    "appended".into(),
                    Value::UInt(ctx.registry.counter("serve.journal.appended")),
                ),
                (
                    "errors".into(),
                    Value::UInt(ctx.registry.counter("serve.journal.errors")),
                ),
            ]),
        ));
    }
    Value::Object(fields)
}

fn worker_loop(ctx: &Arc<Ctx>, jobs: &Arc<DeadlineQueue>) {
    let mut pending: Option<Job> = None;
    loop {
        let job = match pending.take() {
            Some(j) => j,
            None => match jobs.pop() {
                Some(j) => {
                    ctx.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    j
                }
                // Queue closed and drained: exit.
                None => return,
            },
        };
        serve_instance(ctx, jobs, job, &mut pending);
    }
}

/// Stamp how long a job sat on the queue before a worker picked it up:
/// the `serve.queue.seconds` histogram plus a `serve.queue.wait` flight
/// span parented under the request span. The sojourn also feeds the
/// overload gate — this is the measurement CoDel-style shedding runs on.
fn record_queue_wait(ctx: &Arc<Ctx>, job: &Job) {
    let sojourn = job.enqueued.elapsed();
    ctx.gate.observe(sojourn);
    let wait = sojourn.as_secs_f64();
    ctx.registry.observe("serve.queue.seconds", wait);
    madpipe_obs::flight::record_span(
        "serve.queue.wait",
        madpipe_obs::now_unix_us() - wait * 1e6,
        wait * 1e6,
        job.trace,
        madpipe_obs::fresh_id(),
        job.span,
    );
}

/// Render a human-readable panic message from a caught payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Plan `job`'s instance, then keep serving consecutive jobs for the
/// *same* canonical instance through the same warm [`ProbeSession`]:
/// repeated probes cost a memo lookup, and the result is bit-identical
/// to a cold run because every probe is a pure function of
/// (chain, platform, T̂). A job for a different instance is handed back
/// via `pending`.
///
/// A panic inside the planner is caught here: the waiting client gets a
/// structured `internal` error, `serve.panics` is bumped, and the panic
/// is resumed so this worker (and its possibly-poisoned session) tears
/// down — the supervisor spawns a replacement.
fn serve_instance(ctx: &Arc<Ctx>, jobs: &Arc<DeadlineQueue>, job: Job, pending: &mut Option<Job>) {
    record_queue_wait(ctx, &job);
    if Instant::now() >= job.deadline {
        // Sat in the queue past its deadline; the client already gave
        // up — shed it without burning DP time on a dead request.
        ctx.registry.inc("serve.shed.expired");
        let _ = job.reply.try_send(Err(ServeError::timeout()));
        ctx.waker.wake();
        return;
    }
    let PlanRequest {
        chain,
        platform,
        cfg,
        canonical,
    } = *job.req;
    let mut reply = job.reply;
    let (mut trace, mut parent) = (job.trace, job.span);
    // The session must solve under the request's policy spec — a
    // default-built session would (correctly) refuse any non-default
    // request with `PlanError::PolicyMismatch`.
    let mut session = ProbeSession::new_with_policy(
        &chain,
        &platform,
        &cfg.algorithm1.discretization,
        cfg.policy,
    );
    loop {
        let worker_t0 = Instant::now();
        let worker_ts = madpipe_obs::now_unix_us();
        let worker_span = madpipe_obs::fresh_id();
        // Re-probe the cache: another worker may have finished the same
        // instance while this job sat in the queue.
        let outcome: PlanOutcome = match ctx.cache.get(&canonical) {
            Some(plan) => Ok((plan, true)),
            None => {
                let t0 = Instant::now();
                let planned = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if let Some(marker) = &ctx.panic_marker {
                        if chain.name().contains(marker.as_str()) {
                            panic!("chaos marker `{marker}` in chain name");
                        }
                    }
                    let dp_t0 = Instant::now();
                    let dp_ts = madpipe_obs::now_unix_us();
                    let out = madpipe_plan_with_session(&mut session, &cfg);
                    madpipe_obs::flight::record_span(
                        "serve.dp",
                        dp_ts,
                        dp_t0.elapsed().as_secs_f64() * 1e6,
                        trace,
                        madpipe_obs::fresh_id(),
                        worker_span,
                    );
                    out
                }));
                let (result, _stats) = match planned {
                    Ok(r) => r,
                    Err(payload) => {
                        ctx.registry.inc("serve.panics");
                        let _ = reply.try_send(Err(ServeError::internal(format!(
                            "planner worker panicked: {}",
                            panic_message(payload.as_ref())
                        ))));
                        ctx.waker.wake();
                        // Post-mortem: the panic instant joins the request's
                        // trace, and the ring reaches disk *now* — this
                        // thread is about to die and take no dump with it.
                        madpipe_obs::flight::record_instant(
                            "serve.panic",
                            madpipe_obs::now_unix_us(),
                            trace,
                            worker_span,
                        );
                        madpipe_obs::flight::record_span(
                            "serve.worker",
                            worker_ts,
                            worker_t0.elapsed().as_secs_f64() * 1e6,
                            trace,
                            worker_span,
                            parent,
                        );
                        if let Some(path) = &ctx.flight_dump {
                            let _ = madpipe_obs::flight::write_dump(path);
                        }
                        // The session may be mid-update; never reuse it.
                        // Resuming lets the thread die and the supervisor
                        // replace it with a clean one.
                        std::panic::resume_unwind(payload);
                    }
                };
                ctx.registry
                    .observe("serve.plan.seconds", t0.elapsed().as_secs_f64());
                ctx.registry.inc("serve.plans");
                match result {
                    Ok(plan) => {
                        let rendered = Arc::new(plan_to_json(&plan));
                        let evicted = ctx.cache.insert(canonical.clone(), Arc::clone(&rendered));
                        ctx.registry.add("serve.cache.evictions", evicted);
                        // Durability: the journal gets the plan exactly
                        // as rendered, so replay warms byte-identical
                        // responses. A failed append degrades recovery,
                        // never this response.
                        if let Some(j) = &ctx.journal {
                            match j.append(&canonical, &rendered) {
                                Ok(()) => ctx.registry.inc("serve.journal.appended"),
                                Err(_) => ctx.registry.inc("serve.journal.errors"),
                            }
                        }
                        Ok((rendered, false))
                    }
                    Err(e) => Err(ServeError::plan(e.to_string())),
                }
            }
        };
        madpipe_obs::flight::record_span(
            "serve.worker",
            worker_ts,
            worker_t0.elapsed().as_secs_f64() * 1e6,
            trace,
            worker_span,
            parent,
        );
        // The reactor may have timed the slot out and dropped the
        // receiver; the plan still went into the cache, so the retry
        // will hit. The wake gets the response on the wire without
        // waiting out the reactor's poll timeout.
        let _ = reply.try_send(outcome);
        ctx.waker.wake();

        // Lookahead: pull the next queued job without blocking; keep it
        // only if it is the same instance, otherwise hand it back.
        loop {
            match jobs.try_pop() {
                Some(j) => {
                    ctx.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    if j.req.canonical == canonical {
                        record_queue_wait(ctx, &j);
                        if Instant::now() >= j.deadline {
                            ctx.registry.inc("serve.shed.expired");
                            let _ = j.reply.try_send(Err(ServeError::timeout()));
                            ctx.waker.wake();
                            continue;
                        }
                        reply = j.reply;
                        (trace, parent) = (j.trace, j.span);
                        break; // serve it through the warm session
                    }
                    *pending = Some(j);
                    return;
                }
                None => return, // queue empty (or closed)
            }
        }
    }
}

// --- signal handling (no libc dependency) --------------------------------

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // `signal(2)` via a raw declaration — the only libc symbol the
        // daemon needs, not worth a dependency. The handler just flips
        // an atomic, which is async-signal-safe.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_term);
            signal(SIGTERM, on_term);
        }
    }
}

/// Install SIGTERM/SIGINT handlers that request a graceful drain of
/// every running [`Server`] in this process. No-op on non-Unix hosts.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sig::install();
}

/// True once SIGTERM/SIGINT was received (always false when
/// [`install_signal_handlers`] was never called).
pub fn term_requested() -> bool {
    #[cfg(unix)]
    {
        sig::TERM.load(Ordering::SeqCst)
    }
    #[cfg(not(unix))]
    {
        false
    }
}
