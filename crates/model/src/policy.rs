//! Per-stage execution policies: activation recompute and weight
//! versioning.
//!
//! The paper's memory model (§3) fixes every stage to `3·W` weight bytes
//! (two versions + accumulated gradient) and one stored copy of the
//! stage's activations per in-flight batch. Two well-known alternatives
//! trade compute or staleness for memory:
//!
//! * **recompute** (GPipe-style): a stage stashes only its boundary input
//!   activation per in-flight batch and re-runs its forward pass during
//!   backward — the per-batch pin shrinks from `ā` to `a_in`, at the cost
//!   of a static recompute working set `ā − a_in` and an extra forward
//!   pass on the backward critical path;
//! * **2BW double-buffered weights** (PipeDream-2BW): `2·W` instead of
//!   `3·W`, with no time cost in this model.
//!
//! A [`StagePolicy`] is the per-stage choice on both axes; the default
//! policy reproduces the paper's model bit-for-bit. A [`PolicySpec`] is
//! the solve-level configuration: the weight policy is uniform across
//! stages (it dominates: `2·W` is never worse in this cost model), while
//! recompute is a per-stage discrete choice the DP can optimize under
//! [`RecomputeMode::Auto`].

use madpipe_json::{FromJson, JsonError, ToJson, Value};

/// What a stage does with its activations between forward and backward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum ActivationPolicy {
    /// Store every layer input for the backward pass (the paper's model).
    #[default]
    Store,
    /// Stash only the stage's boundary input; re-run the stage forward
    /// during backward.
    Recompute,
}

impl ActivationPolicy {
    /// Canonical string form (used in JSON and CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            ActivationPolicy::Store => "store",
            ActivationPolicy::Recompute => "recompute",
        }
    }

    /// Parse the canonical string form.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "store" => Ok(ActivationPolicy::Store),
            "recompute" => Ok(ActivationPolicy::Recompute),
            other => Err(format!(
                "unknown activation policy {other:?} (expected store|recompute)"
            )),
        }
    }
}

/// How many weight versions a stage keeps resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum WeightPolicy {
    /// Full versioning, `3·W` (the paper's model).
    #[default]
    Full,
    /// PipeDream-2BW double buffering, `2·W`.
    TwoBw,
}

impl WeightPolicy {
    /// The multiplier on `W` in the stage memory formula.
    pub fn multiplier(self) -> u64 {
        match self {
            WeightPolicy::Full => 3,
            WeightPolicy::TwoBw => 2,
        }
    }

    /// Canonical string form (used in JSON and CLI).
    pub fn as_str(self) -> &'static str {
        match self {
            WeightPolicy::Full => "3w",
            WeightPolicy::TwoBw => "2bw",
        }
    }

    /// Parse the canonical string form.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "3w" => Ok(WeightPolicy::Full),
            "2bw" => Ok(WeightPolicy::TwoBw),
            other => Err(format!("unknown weight policy {other:?} (expected 3w|2bw)")),
        }
    }
}

/// The complete per-stage policy choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct StagePolicy {
    /// Activation handling.
    pub activation: ActivationPolicy,
    /// Weight versioning.
    pub weights: WeightPolicy,
}

impl StagePolicy {
    /// True iff this is the paper's default (store + full versioning).
    pub fn is_default(self) -> bool {
        self == StagePolicy::default()
    }

    /// True iff the stage recomputes its forward during backward.
    pub fn recomputes(self) -> bool {
        self.activation == ActivationPolicy::Recompute
    }
}

impl ToJson for StagePolicy {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("activation".into(), self.activation.as_str().to_json()),
            ("weights".into(), self.weights.as_str().to_json()),
        ])
    }
}

impl FromJson for StagePolicy {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let activation = ActivationPolicy::parse(&String::from_json(v.field("activation")?)?)
            .map_err(JsonError::new)?;
        let weights = WeightPolicy::parse(&String::from_json(v.field("weights")?)?)
            .map_err(JsonError::new)?;
        Ok(StagePolicy {
            activation,
            weights,
        })
    }
}

/// Solve-level recompute mode: the planner's stance on the per-stage
/// activation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum RecomputeMode {
    /// Every stage stores (the paper's model; bit-identical plans).
    #[default]
    Never,
    /// Every stage recomputes.
    Always,
    /// Each stage independently chooses in the DP.
    Auto,
}

impl RecomputeMode {
    /// Canonical string form (used in JSON and CLI).
    pub fn as_str(self) -> &'static str {
        match self {
            RecomputeMode::Never => "never",
            RecomputeMode::Always => "always",
            RecomputeMode::Auto => "auto",
        }
    }

    /// Parse the canonical string form.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "never" => Ok(RecomputeMode::Never),
            "always" => Ok(RecomputeMode::Always),
            "auto" => Ok(RecomputeMode::Auto),
            other => Err(format!(
                "unknown recompute mode {other:?} (expected never|always|auto)"
            )),
        }
    }
}

/// Solve-level policy configuration: recompute stance plus the (uniform)
/// weight-versioning policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PolicySpec {
    /// Stance on the per-stage activation axis.
    pub recompute: RecomputeMode,
    /// Weight versioning, applied to every stage.
    pub weights: WeightPolicy,
}

impl PolicySpec {
    /// True iff this spec reproduces the paper's model exactly.
    pub fn is_default(self) -> bool {
        self == PolicySpec::default()
    }

    /// The fixed per-stage activation policy, when the mode is not
    /// [`RecomputeMode::Auto`].
    pub fn fixed_activation(self) -> Option<ActivationPolicy> {
        match self.recompute {
            RecomputeMode::Never => Some(ActivationPolicy::Store),
            RecomputeMode::Always => Some(ActivationPolicy::Recompute),
            RecomputeMode::Auto => None,
        }
    }

    /// The stage policy for a given activation choice under this spec.
    pub fn stage_policy(self, activation: ActivationPolicy) -> StagePolicy {
        StagePolicy {
            activation,
            weights: self.weights,
        }
    }
}

impl ToJson for PolicySpec {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("recompute".into(), self.recompute.as_str().to_json()),
            ("weights".into(), self.weights.as_str().to_json()),
        ])
    }
}

impl FromJson for PolicySpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let recompute = RecomputeMode::parse(&String::from_json(v.field("recompute")?)?)
            .map_err(JsonError::new)?;
        let weights = WeightPolicy::parse(&String::from_json(v.field("weights")?)?)
            .map_err(JsonError::new)?;
        Ok(PolicySpec { recompute, weights })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_paper_model() {
        let p = StagePolicy::default();
        assert_eq!(p.activation, ActivationPolicy::Store);
        assert_eq!(p.weights, WeightPolicy::Full);
        assert_eq!(p.weights.multiplier(), 3);
        assert!(p.is_default());
        assert!(!p.recomputes());
        assert!(PolicySpec::default().is_default());
    }

    #[test]
    fn string_forms_round_trip() {
        for a in [ActivationPolicy::Store, ActivationPolicy::Recompute] {
            assert_eq!(ActivationPolicy::parse(a.as_str()), Ok(a));
        }
        for w in [WeightPolicy::Full, WeightPolicy::TwoBw] {
            assert_eq!(WeightPolicy::parse(w.as_str()), Ok(w));
        }
        for m in [
            RecomputeMode::Never,
            RecomputeMode::Always,
            RecomputeMode::Auto,
        ] {
            assert_eq!(RecomputeMode::parse(m.as_str()), Ok(m));
        }
        assert!(ActivationPolicy::parse("yes").is_err());
        assert!(WeightPolicy::parse("4w").is_err());
        assert!(RecomputeMode::parse("maybe").is_err());
    }

    #[test]
    fn fixed_activation_matches_mode() {
        let spec = |m| PolicySpec {
            recompute: m,
            weights: WeightPolicy::TwoBw,
        };
        assert_eq!(
            spec(RecomputeMode::Never).fixed_activation(),
            Some(ActivationPolicy::Store)
        );
        assert_eq!(
            spec(RecomputeMode::Always).fixed_activation(),
            Some(ActivationPolicy::Recompute)
        );
        assert_eq!(spec(RecomputeMode::Auto).fixed_activation(), None);
    }

    #[test]
    fn json_round_trips() {
        let p = StagePolicy {
            activation: ActivationPolicy::Recompute,
            weights: WeightPolicy::TwoBw,
        };
        let back = StagePolicy::from_json(&Value::parse(&p.to_json().to_string_compact()).unwrap())
            .unwrap();
        assert_eq!(back, p);
        let s = PolicySpec {
            recompute: RecomputeMode::Auto,
            weights: WeightPolicy::TwoBw,
        };
        let back = PolicySpec::from_json(&Value::parse(&s.to_json().to_string_compact()).unwrap())
            .unwrap();
        assert_eq!(back, s);
    }
}
