//! Simulation results.

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Steady-state period (seconds per mini-batch), estimated from the
    /// completion times of the last operation of each batch over the
    /// second half of the run.
    pub period: f64,
    /// Total simulated wall-clock time.
    pub makespan: f64,
    /// Number of mini-batches fully trained.
    pub batches: usize,
    /// Peak memory per GPU (bytes), static + dynamic, observed event by
    /// event.
    pub gpu_peak_bytes: Vec<u64>,
    /// Busy fraction per GPU over the makespan.
    pub gpu_utilization: Vec<f64>,
    /// Whether the run ever exceeded the platform memory on some GPU.
    pub memory_violation: bool,
}

impl SimReport {
    /// Throughput in mini-batches per second.
    pub fn throughput(&self) -> f64 {
        1.0 / self.period
    }

    /// Largest per-GPU peak.
    pub fn max_peak_bytes(&self) -> u64 {
        self.gpu_peak_bytes.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries() {
        let r = SimReport {
            period: 0.5,
            makespan: 10.0,
            batches: 20,
            gpu_peak_bytes: vec![10, 30, 20],
            gpu_utilization: vec![0.9, 0.5, 0.7],
            memory_violation: false,
        };
        assert_eq!(r.throughput(), 2.0);
        assert_eq!(r.max_peak_bytes(), 30);
    }
}
