//! Tiny flag parser (no external dependency): `--key value` pairs plus
//! positional arguments and boolean switches.

use std::collections::HashMap;

/// Parsed command line: positionals in order, flags by name.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Parse `argv`; `switch_names` lists flags that take no value.
pub fn parse(argv: &[String], switch_names: &[&str]) -> Result<Args, String> {
    let mut out = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            if switch_names.contains(&name) {
                out.switches.push(name.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                out.flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else {
            out.positional.push(a.clone());
            i += 1;
        }
    }
    Ok(out)
}

impl Args {
    /// Value of `--name`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    /// Value of `--name` with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.get(name)?.unwrap_or(default))
    }

    /// Whether a boolean switch was passed.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Raw string flag.
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positionals_flags_and_switches() {
        let a = parse(
            &argv(&["plan", "resnet50", "--gpus", "4", "--full"]),
            &["full"],
        )
        .unwrap();
        assert_eq!(a.positional, vec!["plan", "resnet50"]);
        assert_eq!(a.get::<usize>("gpus").unwrap(), Some(4));
        assert!(a.has("full"));
        assert!(!a.has("quick"));
        assert_eq!(a.get_or::<u64>("memory-gb", 16).unwrap(), 16);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--gpus"]), &[]).is_err());
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = parse(&argv(&["--gpus", "four"]), &[]).unwrap();
        assert!(a.get::<usize>("gpus").is_err());
    }
}
