//! The four networks of the paper's evaluation, as linearized chains.

pub mod densenet;
pub mod inception;
pub mod mlp;
pub mod resnet;
pub mod vgg;

use madpipe_model::{Chain, ModelError};

use crate::block::Block;
use crate::cost::GpuModel;
use crate::tensor::TensorShape;

pub use densenet::densenet121;
pub use inception::inception_v3;
pub use mlp::mlp12;
pub use resnet::{resnet101, resnet152, resnet50};
pub use vgg::vgg16;

/// A network as an ordered list of linearization blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Network name (`"resnet50"`, …).
    pub name: String,
    /// Blocks in forward order.
    pub blocks: Vec<Block>,
}

impl NetworkSpec {
    /// Profile the network into a [`Chain`] for a given batch size,
    /// square image size, and GPU cost model — the substitute for the
    /// paper's measurement step (batch 8, 1000×1000 images, V100-class
    /// GPU in §5.1).
    pub fn profile(
        &self,
        batch: u64,
        image_size: u64,
        gpu: &GpuModel,
    ) -> Result<Chain, ModelError> {
        let mut shape = TensorShape::image(batch, image_size, image_size);
        let input_bytes = shape.bytes();
        let mut layers = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (layer, out) = block.to_layer(shape, gpu);
            layers.push(layer);
            shape = out;
        }
        Chain::new(self.name.clone(), input_bytes, layers)
    }

    /// Number of chain layers the network linearizes to.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True iff the spec has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// All four evaluation networks, in the paper's order.
pub fn all_networks() -> Vec<NetworkSpec> {
    vec![resnet50(), resnet101(), inception_v3(), densenet121()]
}

/// Every network the crate can build (the paper's four plus extras).
pub fn extended_networks() -> Vec<NetworkSpec> {
    let mut nets = all_networks();
    nets.push(resnet152());
    nets.push(vgg16());
    nets.push(mlp12());
    nets
}

/// Look a network up by name (case-insensitive; accepts the common
/// aliases used on the CLI).
pub fn by_name(name: &str) -> Option<NetworkSpec> {
    match name.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
        "resnet50" => Some(resnet50()),
        "resnet101" => Some(resnet101()),
        "resnet152" => Some(resnet152()),
        "vgg" | "vgg16" => Some(vgg16()),
        "mlp" | "mlp12" => Some(mlp12()),
        "inception" | "inceptionv3" => Some(inception_v3()),
        "densenet" | "densenet121" => Some(densenet121()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_profile_at_paper_settings() {
        let gpu = GpuModel::default();
        for net in all_networks() {
            let chain = net.profile(8, 1000, &gpu).expect("profiles cleanly");
            assert_eq!(chain.len(), net.len());
            assert!(chain.total_compute_time() > 0.0, "{}", net.name);
            // Final layer of every classifier outputs batch × 1000 logits.
            assert_eq!(
                chain.layer(chain.len() - 1).activation_bytes,
                8 * 1000 * 4,
                "{}",
                net.name
            );
        }
    }

    #[test]
    fn by_name_resolves_aliases() {
        assert_eq!(by_name("ResNet-50").unwrap().name, "resnet50");
        assert_eq!(by_name("inception").unwrap().name, "inception_v3");
        assert_eq!(by_name("DenseNet-121").unwrap().name, "densenet121");
        assert_eq!(by_name("vgg16").unwrap().name, "vgg16");
        assert_eq!(by_name("ResNet-152").unwrap().name, "resnet152");
        assert!(by_name("alexnet").is_none());
    }
}
