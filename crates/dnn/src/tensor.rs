//! Tensor shapes (NCHW, fp32).

/// Bytes per element (fp32 training, as in the paper's profiling).
pub const ELEM_BYTES: u64 = 4;

/// A 4-D activation tensor shape in NCHW layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorShape {
    /// Batch size `N`.
    pub n: u64,
    /// Channels `C`.
    pub c: u64,
    /// Height `H`.
    pub h: u64,
    /// Width `W`.
    pub w: u64,
}

impl TensorShape {
    /// Construct a shape.
    pub fn new(n: u64, c: u64, h: u64, w: u64) -> Self {
        Self { n, c, h, w }
    }

    /// RGB input images (`C = 3`).
    pub fn image(batch: u64, height: u64, width: u64) -> Self {
        Self::new(batch, 3, height, width)
    }

    /// Number of elements.
    pub fn elements(&self) -> u64 {
        self.n * self.c * self.h * self.w
    }

    /// Size in bytes at fp32.
    pub fn bytes(&self) -> u64 {
        self.elements() * ELEM_BYTES
    }

    /// Spatial size after a `k×k` kernel with stride `s` and padding `p`:
    /// `⌊(x + 2p − k)/s⌋ + 1` on both dimensions.
    pub fn conv_spatial(&self, k: u64, s: u64, p: u64) -> (u64, u64) {
        let f = |x: u64| {
            debug_assert!(x + 2 * p >= k, "kernel larger than padded input");
            (x + 2 * p - k) / s + 1
        };
        (f(self.h), f(self.w))
    }

    /// Same shape with different channel count.
    pub fn with_channels(&self, c: u64) -> Self {
        Self { c, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_four_per_element() {
        let s = TensorShape::new(8, 3, 1000, 1000);
        assert_eq!(s.elements(), 24_000_000);
        assert_eq!(s.bytes(), 96_000_000);
    }

    #[test]
    fn conv_spatial_matches_torch_convention() {
        let s = TensorShape::new(1, 3, 224, 224);
        // conv 7×7 stride 2 pad 3 → 112
        assert_eq!(s.conv_spatial(7, 2, 3), (112, 112));
        // maxpool 3×3 stride 2 pad 1 on 112 → 56
        let t = TensorShape::new(1, 64, 112, 112);
        assert_eq!(t.conv_spatial(3, 2, 1), (56, 56));
        // 1×1 stride 1 → identity
        assert_eq!(t.conv_spatial(1, 1, 0), (112, 112));
    }

    #[test]
    fn odd_sizes_floor() {
        let s = TensorShape::new(1, 1, 1000, 1000);
        assert_eq!(s.conv_spatial(7, 2, 3), (500, 500));
        let t = TensorShape::new(1, 1, 125, 125);
        assert_eq!(t.conv_spatial(3, 2, 1), (63, 63));
    }
}
