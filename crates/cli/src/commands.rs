//! Subcommand implementations.

use std::path::PathBuf;

use madpipe_bench::{
    baseline, chains_for, fig6, fig7, fig8, paper_chains, plan_speed, run_cells, summary,
    GridConfig,
};
use madpipe_core::{
    certify_plan, compare, madpipe_plan, madpipe_plan_with_stats, replan, CertifyConfig,
    PlannerConfig,
};
use madpipe_dnn::profile::Profile;
use madpipe_dnn::{networks, GpuModel, RandomChainConfig};
use madpipe_json::Value;
use madpipe_model::{
    Chain, Platform, PlatformFault, PolicySpec, RecomputeMode, UnitSequence, WeightPolicy,
};
use madpipe_obs::{Trace, PLANNER_PID};
use madpipe_schedule::gantt;
use madpipe_sim::{replay_pattern_with, simulate_eager, EagerConfig};

use crate::args::{parse, Args};

const USAGE: &str = "\
madpipe — memory-aware pipelined model parallelism planner

USAGE:
  madpipe networks
      List the built-in networks with profile summaries.
  madpipe plan <network> [--gpus P] [--memory-gb M] [--bandwidth-gb B]
               [--batch N] [--image S] [--profile FILE]
               [--gpu-model v100|a100|rtx3090] [--max-layers N]
               [--recompute never|always|auto] [--weights 3w|2bw]
               [--threads N] [--stats] [--trace-out FILE] [--periods N]
               [--metrics-out FILE] [--stats-json FILE]
      Plan with MadPipe and the PipeDream baseline, print both.
      --recompute lets every stage drop its interior activations and
      recompute them in the backward phase: `always` forces it, `auto`
      lets the DP pick per stage (default `never`, the paper's model);
      --weights 2bw holds two weight versions (2BW-style) instead of the
      default three. Both flags change the stage memory/time model, so
      non-default plans are certified under the same policy.
      --threads evaluates independent probes in parallel (default 1);
      --stats prints planner counters and the probe timeline;
      --trace-out writes a Chrome/Perfetto trace of the planner spans
      plus the scheduled pattern (memory and link counter tracks, N
      periods); --metrics-out writes a Prometheus-style metrics dump;
      --stats-json writes the full PlannerStats payload as JSON.
  madpipe gantt <network> [same flags as plan]
      Print the ASCII Gantt chart of the MadPipe schedule.
  madpipe simulate <network> [same flags as plan] [--batches N]
      Replay the MadPipe schedule and run the eager 1F1B policy.
  madpipe profile <network> [--batch N] [--image S] --out FILE
      Write the synthetic profile (per-layer costs) as JSON.
  madpipe hybrid <network> [same flags as plan]
      Search replica-group counts for hybrid data+model parallelism.
  madpipe trace <network> [same flags as plan] [--periods N] --out FILE
      Export the MadPipe schedule as Chrome-trace JSON (chrome://tracing
      or https://ui.perfetto.dev).
  madpipe certify <network> [same flags as plan] [--periods K] [--jitter J]
               [--trials N] [--headroom H] [--chrome-trace FILE] [--stats]
               [--trace-out FILE] [--metrics-out FILE]
      Differentially certify the MadPipe plan: analytic checker vs.
      event-simulator replay over K periods, exact cross-check on tiny
      instances, and timing-fault injection reporting jitter/bandwidth
      robustness margins. Exits nonzero on any disagreement.
      --chrome-trace writes just the schedule timeline; --trace-out also
      includes the planner/certifier spans; --metrics-out as in plan.
  madpipe validate-trace <trace.json> [--expect-spans a,b,c]
               [--metrics FILE]
      Re-parse an emitted trace — a Chrome document, a flight-recorder
      JSONL dump, or a trace-merge artifact — with the vendored JSON
      parser and check its structural invariants, including distributed
      span links: every `parent` id must be defined by some span, with
      no cycles (the CI artifact gate). Fails if any span named in
      --expect-spans is absent; --metrics additionally validates a
      Prometheus-style dump.
  madpipe trace-merge <dump.jsonl|trace.json>.. --out FILE
      Stitch per-process trace artifacts (flight-recorder dumps and/or
      Chrome documents) into one cluster-wide Chrome trace: each input
      becomes its own named process (pid = input order, label = file
      stem), timestamps rebase to the earliest event, and the
      distributed trace/span/parent ids survive verbatim — so router →
      daemon → worker → DP parent links span processes. The merged
      document is validated before it is written.
  madpipe top [--addr HOST:PORT] [--interval-ms T] [--once]
      Live cluster dashboard: polls `health` and `metrics` on ADDR
      (default the router, 127.0.0.1:4830; a single daemon works too)
      every T ms (default 1000) and renders per-daemon rows — alive,
      workers, queue depth, req/s since the last frame, cache hit
      ratio, flight-recorder drops — plus cluster-wide p50/p95/p99
      request latency reconstructed from the summed histogram buckets.
      --once prints a single frame and exits (no screen clearing).
  madpipe bench-baseline [--out FILE] [--baseline FILE] [--tolerance T]
               [--time-factor F] [--threads N] [--stats-json FILE]
      Run the fixed smoke benchmark grid plus the tight-memory policy
      pair (mlp12 on 4 × 2 GB GPUs, default vs --recompute auto
      --weights 2bw), write the results as JSON to FILE (default
      BENCH_smoke.json), and — when --baseline is given — gate against
      the committed reference: periods within T (default 0.10
      relative), planning time within F× (default 5), no certification
      regressions. The policy pair always gates: the default cell must
      stay infeasible and its 2BW twin must plan and certify.
      --stats-json writes per-cell PlannerStats payloads.
  madpipe bench-plan-speed [--out FILE] [--baseline FILE] [--repeat N]
               [--time-factor F]
      Measure MadPipe planning time over the 42-cell ResNet-50 fig6
      slice (N repeats per cell, default 3; medians recorded), write the
      results as JSON to FILE (default BENCH_plan_speed.json), and —
      when --baseline is given — gate against the committed reference:
      achieved periods bit-identical, DP time (phase1+fallback+refine)
      within F× (default 1.25).
  madpipe experiments <fig6|fig7|fig8|summary|all> [--full] [--threads N]
               [--out DIR]
      Regenerate the paper's figures (text + CSV under DIR, default
      ./results). --full runs the paper's complete grid.
  madpipe replan <network> --fault SPEC [same flags as plan]
      Degraded-mode replanning: plan the healthy platform, apply the
      fault, replan on the survivor and report the throughput delta.
      SPEC is gpu-loss:N (lose N GPUs), memory:F (every GPU loses
      fraction F of memory) or link:F (links slow by fraction F),
      with F in (0, 1). The degraded plan is bit-identical to
      `madpipe plan` on the surviving platform.
  madpipe serve [--addr HOST:PORT] [--threads N] [--cache-entries N]
               [--cache-bytes B] [--timeout-ms T] [--shed-target-ms T]
               [--shed-window-ms T] [--journal FILE] [--peers A,B,..]
               [--gossip-ms T] [--gossip-entries K] [--flight-dump FILE]
      Run the planning daemon: newline-delimited JSON requests
      ({\"cmd\":\"plan\"|\"replan\"|\"metrics\"|\"health\"|\"ping\"|\"shutdown\"}),
      served by an event-driven reactor (pipelined requests answered in
      order), a sharded LRU cache keyed by the canonical instance, N
      planner workers (default 2), per-request deadline T ms (default
      30000). The worker queue is deadline-ordered (earliest first);
      jobs whose deadline passed while queued are dropped at dequeue
      without running the DP (`serve.shed.expired`), and a CoDel-style
      admission gate sheds a growing fraction of new misses with a
      structured `overloaded` error (`serve.shed.overload`) whenever
      the minimum queue sojourn stays above --shed-target-ms (default
      off) for a full --shed-window-ms (default 100). Workers are
      supervised: a panicking request gets a structured `internal`
      error and the worker is respawned; `health` reports queue depth,
      worker liveness, shed counts and journal stats. --journal appends
      every freshly planned entry to a checksummed JSONL file and
      replays it on startup — the warmed cache serves plans
      byte-identical to the pre-restart daemon, a torn tail from a
      mid-append crash is tolerated, and a clean drain compacts the
      file to the live cache. --cache-bytes caps the cache's resident
      plan bytes (0 = entries-only). --peers names sibling daemons to
      gossip the K hottest cache entries to (default 8) every T ms
      (default 500) — peers warm their caches with the shipped plans
      verbatim, so warmed answers stay bit-identical. Prints
      `listening on ADDR` once live; drains gracefully on SIGTERM,
      SIGINT or a shutdown request. Default address 127.0.0.1:4835;
      --cache-entries 0 disables the cache. --flight-dump writes the
      always-on flight-recorder ring (recent spans/counters) as JSONL
      on exit — panics inside a worker dump it immediately.
  madpipe route --backends A,B,.. [--addr HOST:PORT] [--vnodes N]
               [--timeout-ms T] [--probe-timeout-ms T]
               [--breaker-threshold N] [--breaker-open-ms T]
               [--flight-dump FILE]
      Run the cluster router: a consistent-hash ring (N vnodes per
      backend, default 64) keyed on the canonical instance string routes
      each plan/replan to its owning daemon and fails over around dead
      ones. Each backend sits behind a circuit breaker: N consecutive
      failures (default 3) open it for T ms (default 500), an open
      breaker is skipped outright, and recovery goes through a single
      half-open probe request that closes the breaker on success.
      Failovers past the first attempt draw from a retry budget that
      refills at ~10% of forwarded traffic, so a sick cluster can't be
      swamped by retries. `health` and `metrics` answer cluster-wide
      rollups across all backends (histogram buckets are summed per
      bucket, so quantiles reconstruct cluster-wide) using the shorter
      --probe-timeout-ms (default 2000) per backend probe; `health`
      reports each backend's breaker state. A request line carrying a
      `trace` field is forwarded with its `parent` rewritten to the
      router's own `router.forward` span, linking the daemon's spans
      under the router hop. Prints `routing on ADDR -> N backends` once
      live; drains like serve. Default address 127.0.0.1:4830;
      --flight-dump as in serve.
  madpipe loadgen [--addr HOST:PORT[,HOST:PORT..]] [--connections N]
               [--requests M] [--pipeline D] [--instances K] [--seed S]
               [--rate R] [--timeout-ms T] [--max-retries R]
               [--floor FILE] [--expect-hits] [--trace]
      Load client for the daemon: N connections × M requests over K
      mixed instances; prints ok/cache_hit/shed/timeout/error counts,
      p50/p95/p99 latency, hit rate, retries and the server's serve.*
      counters. Closed-loop by default; --rate R switches to an
      open-loop arrival process pacing R requests/s across the
      connections, with latency charged from each request's *scheduled*
      send time, so server backlog shows up in the quantiles instead of
      being hidden by coordinated omission. --addr may list several
      daemons (connection i targets addr i mod len); --pipeline D keeps
      D requests in flight per connection (batched writes, in-order
      reads). Transient transport failures are retried up to R times
      (default 3) with capped jittered backoff; shed (`overloaded`,
      `unavailable`) and `timeout` verdicts are structured outcomes,
      not transport errors. --floor gates the run against a committed
      BENCH_serve_speed.json throughput baseline; --expect-hits exits
      nonzero unless every request succeeded and the server reports
      both cache hits and misses (the CI smoke gate). --trace injects a
      unique distributed trace id into every request (the root of the
      cluster-wide trace) and reports how many responses echoed a span
      back.

All <network> slots also accept `synthetic` (--layers N, --seed S): a
reproducible random CNN-profile chain. All planning commands accept
--recompute/--weights as described under `plan`.

Defaults: --gpus 4, --memory-gb 8, --bandwidth-gb 12, --batch 8,
--image 1000.";

pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let args = parse(
        argv,
        &["full", "quiet", "stats", "expect-hits", "trace", "once"],
    )?;
    match args.positional.first().map(String::as_str) {
        Some("networks") => cmd_networks(),
        Some("plan") => cmd_plan(&args),
        Some("replan") => cmd_replan(&args),
        Some("gantt") => cmd_gantt(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("profile") => cmd_profile(&args),
        Some("experiments") => cmd_experiments(&args),
        Some("hybrid") => cmd_hybrid(&args),
        Some("trace") => cmd_trace(&args),
        Some("certify") => cmd_certify(&args),
        Some("validate-trace") => cmd_validate_trace(&args),
        Some("trace-merge") => cmd_trace_merge(&args),
        Some("top") => cmd_top(&args),
        Some("bench-baseline") => cmd_bench_baseline(&args),
        Some("bench-plan-speed") => cmd_bench_plan_speed(&args),
        Some("serve") => cmd_serve(&args),
        Some("route") => cmd_route(&args),
        Some("loadgen") => cmd_loadgen(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn load_chain(args: &Args) -> Result<Chain, String> {
    if let Some(path) = args.raw("profile") {
        let p = Profile::load(path).map_err(|e| format!("loading profile {path}: {e}"))?;
        return Ok(p.chain);
    }
    let name = args.positional.get(1).ok_or("missing <network> argument")?;
    let batch = args.get_or("batch", 8u64)?;
    let image = args.get_or("image", 1000u64)?;
    if name == "synthetic" {
        let cfg = RandomChainConfig {
            layers: args.get_or("layers", 12usize)?,
            ..RandomChainConfig::default()
        };
        let seed = args.get_or("seed", 42u64)?;
        let chain = madpipe_dnn::random_chain(&cfg, seed);
        return Ok(match args.get::<usize>("max-layers")? {
            Some(cap) => madpipe_dnn::coarsen(&chain, cap),
            None => chain,
        });
    }
    let spec = networks::by_name(name).ok_or_else(|| {
        format!(
            "unknown network `{name}` (try: resnet50, resnet101, resnet152, inception, densenet121, vgg16, or `synthetic` with --layers/--seed)"
        )
    })?;
    let gpu = match args.raw("gpu-model") {
        Some(g) => GpuModel::by_name(g).ok_or_else(|| format!("unknown GPU model `{g}`"))?,
        None => GpuModel::default(),
    };
    let chain = spec
        .profile(batch, image, &gpu)
        .map_err(|e| e.to_string())?;
    Ok(match args.get::<usize>("max-layers")? {
        Some(cap) => madpipe_dnn::coarsen(&chain, cap),
        None => chain,
    })
}

/// Enable the span tracer when any command-line flag wants a trace file,
/// so the subsequent planning/certification calls record their spans.
fn arm_tracer(args: &Args) -> bool {
    let wanted = args.raw("trace-out").is_some();
    if wanted {
        madpipe_obs::set_enabled(true);
    }
    wanted
}

/// Write the collected planner spans — plus, when a plan exists, the
/// schedule timeline with its memory/link counter tracks — as one
/// Chrome/Perfetto trace. Disables the tracer.
fn write_trace(
    out: &str,
    chain: &Chain,
    platform: &Platform,
    plan: Option<&madpipe_core::MadPipePlan>,
    periods: usize,
) -> Result<(), String> {
    // Build the schedule timeline first, while the tracer is still on,
    // so the replay behind it contributes its `sim.replay` span.
    let schedule = plan.map(|plan| {
        madpipe_sim::schedule_trace_with(
            chain,
            platform,
            &plan.allocation,
            &plan.policies,
            &plan.schedule.pattern,
            periods,
        )
    });
    madpipe_obs::set_enabled(false);
    let spans = madpipe_obs::drain_spans();
    let mut trace = Trace::new();
    trace.process_name(PLANNER_PID, "planner");
    trace.add_spans(PLANNER_PID, &spans);
    if let Some(schedule) = schedule {
        trace.extend(schedule);
    }
    std::fs::write(out, trace.render_chrome()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out} ({} planner spans{})",
        spans.len(),
        if plan.is_some() {
            format!(" + {periods}-period schedule timeline")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Write a Prometheus-style metrics dump for `--metrics-out`.
fn write_metrics(out: &str, stats: &madpipe_core::PlannerStats) -> Result<(), String> {
    std::fs::write(out, stats.metrics.to_prometheus())
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Write the full `PlannerStats` JSON payload for `--stats-json`.
fn write_stats_json(out: &str, stats: &madpipe_core::PlannerStats) -> Result<(), String> {
    std::fs::write(out, stats.to_json().to_string_pretty())
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Parse `--recompute never|always|auto` and `--weights 3w|2bw` into
/// the planner's policy space (both default to the paper's model).
fn policy_spec(args: &Args) -> Result<PolicySpec, String> {
    let mut spec = PolicySpec::default();
    if let Some(r) = args.raw("recompute") {
        spec.recompute = RecomputeMode::parse(r).map_err(|e| format!("--recompute: {e}"))?;
    }
    if let Some(w) = args.raw("weights") {
        spec.weights = WeightPolicy::parse(w).map_err(|e| format!("--weights: {e}"))?;
    }
    Ok(spec)
}

/// The shared `PlannerConfig` for planning commands: threads + policy.
fn planner_config(args: &Args) -> Result<PlannerConfig, String> {
    Ok(PlannerConfig {
        threads: args.get_or("threads", 1usize)?.max(1),
        policy: policy_spec(args)?,
        ..PlannerConfig::default()
    })
}

fn load_platform(args: &Args) -> Result<Platform, String> {
    let p = args.get_or("gpus", 4usize)?;
    let m = args.get_or("memory-gb", 8u64)?;
    let b = args.get_or("bandwidth-gb", 12.0f64)?;
    Platform::gb(p, m, b).map_err(|e| e.to_string())
}

fn cmd_networks() -> Result<(), String> {
    let gpu = GpuModel::default();
    println!(
        "{:<14} {:>7} {:>12} {:>14} {:>14}",
        "network", "layers", "U(1,L) ms", "weights MB", "sum act MB"
    );
    for spec in networks::all_networks() {
        let chain = spec.profile(8, 1000, &gpu).map_err(|e| e.to_string())?;
        let weights: u64 = chain.weight_bytes(0..chain.len());
        let acts: u64 = chain.stored_activation_bytes(0..chain.len());
        println!(
            "{:<14} {:>7} {:>12.1} {:>14.1} {:>14.1}",
            chain.name(),
            chain.len(),
            chain.total_compute_time() * 1e3,
            weights as f64 / 1e6,
            acts as f64 / 1e6,
        );
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let platform = load_platform(args)?;
    println!(
        "{}: {} layers, U(1,L) = {:.1} ms | P = {}, M = {:.0} GB, beta = {:.0} GB/s",
        chain.name(),
        chain.len(),
        chain.total_compute_time() * 1e3,
        platform.n_gpus,
        platform.memory_bytes as f64 / (1u64 << 30) as f64,
        platform.bandwidth / (1u64 << 30) as f64,
    );
    let planner = planner_config(args)?;
    arm_tracer(args);
    let cmp = compare(&chain, &platform, &planner);
    match &cmp.madpipe {
        Ok(plan) => {
            println!(
                "MadPipe   : {:.1} ms/batch ({:.2} img/s at batch 8), phase-1 estimate {:.1} ms",
                plan.period() * 1e3,
                8.0 * plan.throughput(),
                plan.phase1.period * 1e3
            );
            for (i, s) in plan.allocation.stages().iter().enumerate() {
                let policy = plan.policies.get(i).copied().unwrap_or_default();
                let tag = if policy.is_default() {
                    String::new()
                } else {
                    format!(
                        "  [{}, {}]",
                        policy.activation.as_str(),
                        policy.weights.as_str()
                    )
                };
                println!(
                    "    layers {:>3}..{:<3} -> GPU {}{tag}",
                    s.layers.start, s.layers.end, s.gpu
                );
            }
        }
        Err(e) => println!("MadPipe   : infeasible ({e})"),
    }
    match &cmp.pipedream {
        Ok(plan) => println!(
            "PipeDream : {:.1} ms/batch, DP prediction {:.1} ms, {} stages",
            plan.period() * 1e3,
            plan.outcome.predicted_period * 1e3,
            plan.outcome.partition.len()
        ),
        Err(e) => println!("PipeDream : infeasible ({e})"),
    }
    if let Some(r) = cmp.ratio() {
        println!("ratio (PipeDream/MadPipe): {r:.3}  (>1 means MadPipe wins)");
    }
    if args.has("stats") {
        let stats = &cmp.stats;
        println!("planner   : {}", stats.summary());
        println!(
            "  phases  : phase1 {:.3}s, fallback {:.3}s, refine {:.3}s, schedule {:.3}s",
            stats.phase1_seconds,
            stats.fallback_seconds,
            stats.refine_seconds,
            stats.schedule_seconds
        );
        println!(
            "  dp      : memo hits {}, load prunes {}, memory prunes {}",
            stats.dp.memo_hits, stats.dp.load_prunes, stats.dp.memory_prunes
        );
        println!(
            "  {:<12} {:>12} {:>8} {:>12} {:>8} {:>10}",
            "probe", "T-hat ms", "special", "period ms", "states", "answer"
        );
        for p in &stats.probes {
            let answer = if p.cached {
                "cached"
            } else if p.pruned {
                "pruned"
            } else {
                "solved"
            };
            let period = if p.period.is_finite() {
                format!("{:.3}", p.period * 1e3)
            } else {
                "inf".to_string()
            };
            println!(
                "  {:<12} {:>12.3} {:>8} {:>12} {:>8} {:>10}",
                p.source.to_string(),
                p.t_hat * 1e3,
                p.use_special,
                period,
                p.states,
                answer
            );
        }
    }
    if let Some(out) = args.raw("trace-out") {
        let periods = args.get_or("periods", 6usize)?;
        write_trace(out, &chain, &platform, cmp.madpipe.as_ref().ok(), periods)?;
    }
    if let Some(out) = args.raw("metrics-out") {
        write_metrics(out, &cmp.stats)?;
    }
    if let Some(out) = args.raw("stats-json") {
        write_stats_json(out, &cmp.stats)?;
    }
    Ok(())
}

fn cmd_replan(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let platform = load_platform(args)?;
    let spec = args
        .raw("fault")
        .ok_or("replan requires --fault SPEC (gpu-loss:N, memory:F or link:F with F in (0, 1))")?;
    let fault = PlatformFault::parse_spec(spec).map_err(|e| e.to_string())?;
    let planner = planner_config(args)?;
    let out = replan(&chain, &platform, fault, &planner).map_err(|e| e.to_string())?;

    let gb = (1u64 << 30) as f64;
    println!(
        "{}: {} layers | healthy P = {}, M = {:.0} GB, beta = {:.0} GB/s",
        chain.name(),
        chain.len(),
        platform.n_gpus,
        platform.memory_bytes as f64 / gb,
        platform.bandwidth / gb,
    );
    println!(
        "fault    : {} -> surviving P = {}, M = {:.1} GB, beta = {:.1} GB/s",
        out.fault,
        out.degraded_platform.n_gpus,
        out.degraded_platform.memory_bytes as f64 / gb,
        out.degraded_platform.bandwidth / gb,
    );
    match &out.baseline {
        Ok(plan) => println!(
            "baseline : {:.1} ms/batch ({:.2} batches/s)",
            plan.period() * 1e3,
            plan.throughput()
        ),
        Err(e) => println!("baseline : infeasible ({e})"),
    }
    match &out.degraded {
        Ok(plan) => {
            println!(
                "degraded : {:.1} ms/batch ({:.2} batches/s)",
                plan.period() * 1e3,
                plan.throughput()
            );
            for s in plan.allocation.stages() {
                println!(
                    "    layers {:>3}..{:<3} -> GPU {}",
                    s.layers.start, s.layers.end, s.gpu
                );
            }
        }
        Err(e) => println!("degraded : infeasible ({e})"),
    }
    match (out.throughput_delta(), out.period_ratio()) {
        (Some(delta), Some(ratio)) => println!(
            "delta    : throughput {:+.1}%, period x{:.3}",
            delta * 100.0,
            ratio
        ),
        _ => println!("delta    : unavailable (one side is infeasible)"),
    }
    if args.has("stats") {
        println!("baseline planner: {}", out.baseline_stats.summary());
        println!("degraded planner: {}", out.degraded_stats.summary());
    }
    Ok(())
}

fn cmd_gantt(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let platform = load_platform(args)?;
    let plan = madpipe_plan(&chain, &platform, &planner_config(args)?)
        .map_err(|e| format!("planning failed: {e}"))?;
    let seq =
        UnitSequence::from_allocation_with(&chain, &platform, &plan.allocation, &plan.policies);
    print!("{}", gantt::render(&seq, &plan.schedule.pattern, 100));
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let platform = load_platform(args)?;
    let batches = args.get_or("batches", 100usize)?;
    let plan = madpipe_plan(&chain, &platform, &planner_config(args)?)
        .map_err(|e| format!("planning failed: {e}"))?;
    let replay = replay_pattern_with(
        &chain,
        &platform,
        &plan.allocation,
        &plan.policies,
        &plan.schedule.pattern,
        batches,
    );
    println!(
        "replay   : period {:.1} ms (analytic {:.1} ms), peak {:.2} GB, violation: {}",
        replay.period * 1e3,
        plan.period() * 1e3,
        replay.max_peak_bytes() as f64 / (1u64 << 30) as f64,
        replay.memory_violation
    );
    let eager = simulate_eager(
        &chain,
        &platform,
        &plan.allocation,
        &EagerConfig {
            batches,
            depth: None,
        },
    );
    println!(
        "eager1F1B: period {:.1} ms, peak {:.2} GB, violation: {}",
        eager.period * 1e3,
        eager.max_peak_bytes() as f64 / (1u64 << 30) as f64,
        eager.memory_violation
    );
    Ok(())
}

fn cmd_hybrid(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let platform = load_platform(args)?;
    let hybrid = madpipe_core::best_hybrid(&chain, &platform, &planner_config(args)?)
        .map_err(|e| format!("no hybrid configuration plans: {e}"))?;
    println!(
        "best hybrid for {} on {} GPUs: {} replica group(s) x {} GPUs",
        chain.name(),
        platform.n_gpus,
        hybrid.replicas,
        hybrid.group_gpus
    );
    println!(
        "  group period {:.1} ms, all-reduce bottleneck {:.2} ms, effective {:.1} ms",
        hybrid.plan.period() * 1e3,
        hybrid.allreduce_time * 1e3,
        hybrid.effective_period * 1e3
    );
    println!(
        "  aggregate throughput: {:.2} batches/s",
        hybrid.throughput()
    );
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let platform = load_platform(args)?;
    let periods = args.get_or("periods", 6usize)?;
    let out: PathBuf = args.raw("out").ok_or("trace requires --out FILE")?.into();
    let plan = madpipe_plan(&chain, &platform, &planner_config(args)?)
        .map_err(|e| format!("planning failed: {e}"))?;
    let json = madpipe_sim::schedule_trace_with(
        &chain,
        &platform,
        &plan.allocation,
        &plan.policies,
        &plan.schedule.pattern,
        periods,
    )
    .render_chrome();
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} periods of a {:.1} ms pattern)",
        out.display(),
        periods,
        plan.period() * 1e3
    );
    Ok(())
}

fn cmd_certify(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let platform = load_platform(args)?;
    let planner = planner_config(args)?;
    arm_tracer(args);
    let (plan, mut stats) = madpipe_plan_with_stats(&chain, &platform, &planner);
    let plan = plan.map_err(|e| format!("planning failed: {e}"))?;

    let cfg = CertifyConfig {
        periods: args.get_or("periods", CertifyConfig::default().periods)?,
        jitter_cap: args.get_or("jitter", CertifyConfig::default().jitter_cap)?,
        trials: args.get_or("trials", CertifyConfig::default().trials)?,
        headroom: args.get_or("headroom", CertifyConfig::default().headroom)?,
        ..CertifyConfig::default()
    };
    println!(
        "certifying {} on P = {}, M = {:.0} GB, beta = {:.0} GB/s ({} replay periods)",
        chain.name(),
        platform.n_gpus,
        platform.memory_bytes as f64 / (1u64 << 30) as f64,
        platform.bandwidth / (1u64 << 30) as f64,
        cfg.periods,
    );
    let cert = certify_plan(&chain, &platform, &plan, &cfg);
    cert.record(&mut stats);

    let gb = |bytes: u64| bytes as f64 / (1u64 << 30) as f64;
    if let Some(a) = &cert.analytic {
        println!(
            "analytic : period {:.3} ms, peak {:.2} GB, pipeline depth {}",
            a.period * 1e3,
            gb(a.gpu_peak_bytes.iter().copied().max().unwrap_or(0)),
            a.max_shift
        );
    }
    if let Some(r) = &cert.replay {
        println!(
            "replay   : period {:.3} ms, peak {:.2} GB over {} batches",
            r.period * 1e3,
            gb(r.gpu_peak_bytes.iter().copied().max().unwrap_or(0)),
            r.batches
        );
    }
    match &cert.exact {
        Some(x) => println!(
            "exact    : optimum {:.3} ms, plan/optimum ratio {:.4}",
            x.exact_period * 1e3,
            x.ratio
        ),
        None => println!("exact    : skipped (instance above the exact-solver gate)"),
    }
    println!(
        "margins  : jitter {:.3} (cap {:.2}), bandwidth degradation {:.3} (cap {:.2})",
        cert.jitter_margin, cfg.jitter_cap, cert.beta_margin, cfg.beta_cap
    );

    if let Some(out) = args.raw("chrome-trace") {
        let json = madpipe_sim::schedule_trace_with(
            &chain,
            &platform,
            &plan.allocation,
            &plan.policies,
            &plan.schedule.pattern,
            cfg.periods.min(12),
        )
        .render_chrome();
        std::fs::write(out, json).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    if let Some(out) = args.raw("trace-out") {
        write_trace(out, &chain, &platform, Some(&plan), cfg.periods.min(12))?;
    }
    if let Some(out) = args.raw("metrics-out") {
        write_metrics(out, &stats)?;
    }
    if args.has("stats") {
        println!("planner  : {}", stats.summary());
    }

    if cert.passed() {
        println!("PASS: checker, replay, and fault injection agree");
        Ok(())
    } else {
        for f in &cert.failures {
            eprintln!("FAIL: {f}");
        }
        Err(format!(
            "certification failed with {} disagreement(s)",
            cert.failures.len()
        ))
    }
}

fn cmd_validate_trace(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("missing <trace.json> argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let s =
        madpipe_obs::validate::validate_trace_text(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} events ({} spans, {} span names, {} counter tracks), horizon {:.3} ms",
        s.events,
        s.spans,
        s.span_names.len(),
        s.counter_tracks.len(),
        s.max_ts_us / 1e3,
    );
    for (track, peak) in &s.counter_peaks {
        println!("  peak {track}: {peak}");
    }
    if let Some(expected) = args.raw("expect-spans") {
        let missing: Vec<&str> = expected
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty() && !s.span_names.contains(*n))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "{path}: missing expected span(s) {} (present: {:?})",
                missing.join(", "),
                s.span_names
            ));
        }
        println!("  all expected spans present: {expected}");
    }
    if let Some(mpath) = args.raw("metrics") {
        let text = std::fs::read_to_string(mpath).map_err(|e| format!("reading {mpath}: {e}"))?;
        let n = madpipe_obs::validate::validate_prometheus(&text)
            .map_err(|e| format!("{mpath}: {e}"))?;
        println!("{mpath}: {n} valid metric samples");
    }
    Ok(())
}

fn cmd_trace_merge(args: &Args) -> Result<(), String> {
    let inputs = &args.positional[1..];
    if inputs.is_empty() {
        return Err("trace-merge needs at least one input artifact".into());
    }
    let out = args.raw("out").ok_or("trace-merge requires --out FILE")?;
    let mut labeled: Vec<(String, String)> = Vec::with_capacity(inputs.len());
    for path in inputs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let label = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path)
            .to_string();
        labeled.push((label, text));
    }
    let merged = madpipe_obs::merge_traces(&labeled)?;
    let text = merged.to_string_pretty();
    // Validate before writing: a merged artifact with broken parent
    // links would only fail later, in someone else's validate-trace.
    let s = madpipe_obs::validate::validate_chrome(&text).map_err(|e| format!("merged: {e}"))?;
    std::fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} processes, {} events ({} spans, {} cross-linked), horizon {:.3} ms",
        labeled.len(),
        s.events,
        s.spans,
        s.linked_spans,
        s.max_ts_us / 1e3,
    );
    Ok(())
}

/// One request/response exchange against a daemon or router (used by
/// `madpipe top` for its `health`/`metrics` polls).
fn probe_line(addr: &str, line: &str, timeout: std::time::Duration) -> Result<Value, String> {
    use std::io::{BufRead, BufReader, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    Value::parse(response.trim()).map_err(|e| format!("bad response JSON: {e}"))
}

/// Render one latency quantile for `madpipe top`. An idle cluster has
/// all-zero histogram buckets, for which no quantile is defined
/// ([`madpipe_obs::quantile_from_buckets`] returns NaN) — render `-`
/// instead of a raw NaN.
fn latency_cell(ms: f64) -> String {
    if ms.is_finite() {
        format!("{ms:.2} ms")
    } else {
        "-".to_string()
    }
}

/// One `madpipe top` frame: per-daemon rows from the health rollup plus
/// cluster-wide latency quantiles from the summed histogram buckets.
fn top_frame(
    addr: &str,
    timeout: std::time::Duration,
    previous: &mut std::collections::HashMap<String, (u64, std::time::Instant)>,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let health = probe_line(addr, r#"{"cmd":"health"}"#, timeout)?;
    let body = health.field("health").map_err(|e| format!("health: {e}"))?;
    // A router rollup carries a `daemons` array; a single daemon is its
    // own one-row cluster.
    let daemons: Vec<(String, bool, String, Value)> = match body.get("daemons") {
        Some(list) => list
            .as_array()
            .map_err(|e| format!("daemons: {e}"))?
            .iter()
            .map(|d| {
                let name = d
                    .get("addr")
                    .and_then(|a| a.as_str().ok())
                    .unwrap_or("?")
                    .to_string();
                let ok = d.get("ok") == Some(&Value::Bool(true));
                let breaker = d
                    .get("breaker")
                    .and_then(|b| b.as_str().ok())
                    .unwrap_or("-")
                    .to_string();
                (
                    name,
                    ok,
                    breaker,
                    d.get("health").cloned().unwrap_or(Value::Null),
                )
            })
            .collect(),
        // A direct daemon has no router in front of it, hence no breaker.
        None => vec![(addr.to_string(), true, "-".into(), body.clone())],
    };
    let uint = |v: &Value, key: &str| v.get(key).and_then(|x| x.as_u64().ok()).unwrap_or(0);
    let now = std::time::Instant::now();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>5} {:>8} {:>6} {:>9} {:>6} {:>8} {:>9} {:>9}",
        "daemon", "up", "workers", "queue", "req/s", "hit%", "dropped", "shed", "breaker"
    );
    for (name, ok, breaker, h) in &daemons {
        if !ok {
            let _ = writeln!(
                out,
                "{name:<22} {:>5} — unreachable (breaker {breaker})",
                "DOWN"
            );
            continue;
        }
        let requests = uint(h, "requests");
        let rate = match previous.insert(name.clone(), (requests, now)) {
            Some((prev, at)) if now > at && requests >= prev => {
                (requests - prev) as f64 / (now - at).as_secs_f64()
            }
            _ => 0.0,
        };
        let hits = uint(h, "cache_hits") as f64;
        let misses = uint(h, "cache_misses") as f64;
        let hit_pct = if hits + misses > 0.0 {
            100.0 * hits / (hits + misses)
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<22} {:>5} {:>5}/{:<2} {:>6} {:>9.1} {:>6.1} {:>8} {:>9} {:>9}",
            name,
            "up",
            uint(h, "workers_alive"),
            uint(h, "workers_configured"),
            uint(h, "queue_depth"),
            rate,
            hit_pct,
            uint(h, "events_dropped"),
            uint(h, "shed_expired") + uint(h, "shed_overload"),
            breaker,
        );
    }
    // Cluster-wide request-latency quantiles, reconstructed from the
    // (router-summed) cumulative `_bucket` series.
    let metrics = probe_line(addr, r#"{"cmd":"metrics"}"#, timeout)?;
    if let Ok(text) = metrics.field("metrics").and_then(Value::as_str) {
        if let Ok(histograms) = madpipe_obs::validate::histogram_buckets(text) {
            if let Some(buckets) = histograms.get("madpipe_serve_request_seconds") {
                let q = |p: f64| latency_cell(1e3 * madpipe_obs::quantile_from_buckets(buckets, p));
                let _ = writeln!(
                    out,
                    "latency   : p50 {}, p95 {}, p99 {} (cluster, {} requests)",
                    q(0.50),
                    q(0.95),
                    q(0.99),
                    buckets.iter().map(|(_, n)| n).sum::<u64>(),
                );
            }
        }
    }
    Ok(out)
}

fn cmd_top(args: &Args) -> Result<(), String> {
    use std::io::Write as _;
    let addr = args.raw("addr").unwrap_or("127.0.0.1:4830").to_string();
    let interval = std::time::Duration::from_millis(args.get_or("interval-ms", 1_000u64)?.max(100));
    let timeout = std::time::Duration::from_millis(args.get_or("timeout-ms", 5_000u64)?.max(1));
    let once = args.has("once");
    let mut previous = std::collections::HashMap::new();
    loop {
        let frame = top_frame(&addr, timeout, &mut previous)?;
        if once {
            print!("{frame}");
            return Ok(());
        }
        // Clear + home, then the frame: a crude but dependency-free
        // full-screen refresh.
        print!(
            "\x1b[2J\x1b[Hmadpipe top — {addr} (refresh {} ms)\n\n{frame}",
            interval.as_millis()
        );
        std::io::stdout().flush().ok();
        std::thread::sleep(interval);
    }
}

fn cmd_bench_baseline(args: &Args) -> Result<(), String> {
    let grid = baseline::smoke_grid();
    let cells = baseline::smoke_cells();
    let threads = args.get_or("threads", 0usize)?;
    let out: PathBuf = args.raw("out").unwrap_or("BENCH_smoke.json").into();
    eprintln!("running the {}-cell smoke grid...", cells.len());
    let mut networks: Vec<String> = cells.iter().map(|c| c.network.clone()).collect();
    networks.sort();
    networks.dedup();
    let chains = chains_for(&networks, grid.batch, grid.image_size);
    let results = run_cells(&chains, &cells, &PlannerConfig::default(), threads, true);
    let records: Vec<baseline::BaselineRecord> = results.iter().map(Into::into).collect();
    baseline::save(&records, &out).map_err(|e| e.to_string())?;
    println!("wrote {} ({} cells)", out.display(), records.len());

    let flip_violations = baseline::tight_cell_flip_violations(&records);
    if !flip_violations.is_empty() {
        for v in &flip_violations {
            eprintln!("FAIL: {v}");
        }
        return Err(format!(
            "tight-memory policy flip check failed with {} violation(s)",
            flip_violations.len()
        ));
    }

    if let Some(path) = args.raw("stats-json") {
        let doc = Value::Array(
            results
                .iter()
                .map(|r| {
                    Value::Object(vec![
                        ("network".into(), Value::Str(r.cell.network.clone())),
                        ("p".into(), Value::UInt(r.cell.p as u64)),
                        ("m_gb".into(), Value::UInt(r.cell.m_gb)),
                        ("beta_gb".into(), Value::Float(r.cell.beta_gb)),
                        ("stats".into(), r.stats.to_json()),
                    ])
                })
                .collect(),
        );
        std::fs::write(path, doc.to_string_pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(uncertified) = records
        .iter()
        .find(|r| r.madpipe.is_some() && r.certified != Some(true))
    {
        return Err(format!(
            "{} P={} M={}GB: plan exists but did not certify",
            uncertified.network, uncertified.p, uncertified.m_gb
        ));
    }

    let Some(base_path) = args.raw("baseline") else {
        return Ok(());
    };
    let reference = baseline::load(base_path)?;
    let tolerance = args.get_or("tolerance", 0.10f64)?;
    let time_factor = args.get_or("time-factor", 5.0f64)?;
    let violations = baseline::compare_baselines(&records, &reference, tolerance, time_factor);
    if violations.is_empty() {
        println!(
            "baseline check PASS vs {base_path} (period tolerance {:.0}%, time factor {time_factor}x)",
            tolerance * 100.0
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        Err(format!(
            "baseline check failed with {} violation(s) vs {base_path}",
            violations.len()
        ))
    }
}

fn cmd_bench_plan_speed(args: &Args) -> Result<(), String> {
    let grid = plan_speed::plan_speed_grid();
    let repeats = args.get_or("repeat", 3usize)?;
    let out: PathBuf = args.raw("out").unwrap_or("BENCH_plan_speed.json").into();
    eprintln!(
        "timing the {}-cell plan-speed grid ({repeats} repeats per cell)...",
        grid.cells().len()
    );
    let records = plan_speed::run_plan_speed(&grid, &PlannerConfig::default(), repeats);
    plan_speed::save(&records, &out).map_err(|e| e.to_string())?;
    let dp_total: f64 = records.iter().map(|r| r.dp_seconds).sum();
    println!(
        "wrote {} ({} cells, {:.2} s median DP time total)",
        out.display(),
        records.len(),
        dp_total
    );

    let Some(base_path) = args.raw("baseline") else {
        return Ok(());
    };
    let reference = plan_speed::load(base_path)?;
    let time_factor = args.get_or("time-factor", 1.25f64)?;
    let violations = plan_speed::compare_plan_speed(&records, &reference, time_factor);
    if violations.is_empty() {
        println!(
            "plan-speed check PASS vs {base_path} (periods bit-identical, DP time factor {time_factor}x)"
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        Err(format!(
            "plan-speed check failed with {} violation(s) vs {base_path}",
            violations.len()
        ))
    }
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let chain = load_chain(args)?;
    let batch = args.get_or("batch", 8u64)?;
    let image = args.get_or("image", 1000u64)?;
    let out: PathBuf = args.raw("out").ok_or("profile requires --out FILE")?.into();
    let profile = Profile {
        batch,
        image_size: image,
        gpu: Some(GpuModel::default()),
        chain,
    };
    profile.save(&out).map_err(|e| e.to_string())?;
    println!("wrote {}", out.display());
    Ok(())
}

fn cmd_experiments(args: &Args) -> Result<(), String> {
    let which = args.positional.get(1).map(String::as_str).unwrap_or("all");
    let grid = if args.has("full") {
        GridConfig::full()
    } else {
        GridConfig::quick()
    };
    let threads = args.get_or("threads", 0usize)?;
    let out_dir: PathBuf = args.raw("out").unwrap_or("results").into();
    let quiet = args.has("quiet");

    // Figure 6 needs a dense memory axis for ResNet-50 only; figures 7
    // and 8 use the full network grid. Evaluate the union of cells once.
    let mut grid6 = grid.clone();
    grid6.networks = vec!["resnet50".into()];
    if !args.has("full") {
        grid6.m_values = (3..=16).collect();
    }
    let mut cells = grid.cells();
    for c in grid6.cells() {
        if !cells.contains(&c) {
            cells.push(c);
        }
    }

    // "Below the leftmost point": re-plan the tightest fig6 memory
    // points under recompute + 2BW weight versioning, plus one grid
    // step below the paper's axis where the default model is typically
    // infeasible. These render as policy-tagged rows in the fig6 panels.
    let policy = PolicySpec {
        recompute: RecomputeMode::Auto,
        weights: WeightPolicy::TwoBw,
    };
    let m_min = grid6.m_values.iter().copied().min().unwrap_or(3);
    for &p in &grid6.p_values {
        for &beta_gb in &grid6.beta_values {
            for m_gb in [m_min.saturating_sub(1), m_min] {
                if m_gb == 0 {
                    continue;
                }
                let cell = madpipe_bench::Cell {
                    network: "resnet50".into(),
                    p,
                    m_gb,
                    beta_gb,
                    policy,
                };
                if !cells.contains(&cell) {
                    cells.push(cell);
                }
            }
        }
    }

    eprintln!(
        "running {} cells on the {} grid ({} threads)...",
        cells.len(),
        if args.has("full") { "full" } else { "quick" },
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );
    let chains = paper_chains(&grid);
    let planner = PlannerConfig::default();
    let results = run_cells(&chains, &cells, &planner, threads, !quiet);

    let total_planning: f64 = results.iter().map(|r| r.planning_seconds).sum();
    let total_solves: usize = results.iter().map(|r| r.dp_solves()).sum();
    let total_saved: usize = results.iter().map(|r| r.dp_probes_saved()).sum();
    eprintln!(
        "planning time over all cells: {total_planning:.1} s \
         ({total_solves} DP solves, {total_saved} probes saved by reuse)"
    );

    let emit = |name: &str, text: String, table: madpipe_bench::csv::Table| -> Result<(), String> {
        println!("{text}");
        let path = out_dir.join(format!("{name}.csv"));
        table.save(&path).map_err(|e| e.to_string())?;
        eprintln!("wrote {}", path.display());
        Ok(())
    };

    if which == "fig6" || which == "all" {
        let (text, table) = fig6::generate(&results);
        emit("fig6_resnet50_periods", text, table)?;
    }
    if which == "fig7" || which == "all" {
        let (text, table) = fig7::generate(&results);
        emit("fig7_ratio_gmean", text, table)?;
    }
    if which == "fig8" || which == "all" {
        let (text, table) = fig8::generate(&results);
        emit("fig8_speedups", text, table)?;
    }
    if which == "summary" || which == "all" {
        let (text, table) = summary::generate(&results);
        emit("summary", text, table)?;
    }
    if !["fig6", "fig7", "fig8", "summary", "all"].contains(&which) {
        return Err(format!("unknown experiment `{which}`"));
    }
    Ok(())
}

/// Split a comma-separated `--flag a,b,c` into its entries.
fn comma_list(raw: &str) -> Vec<String> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use std::io::Write as _;
    let cfg = madpipe_serve::ServeConfig {
        addr: args.raw("addr").unwrap_or("127.0.0.1:4835").to_string(),
        threads: args.get_or("threads", 2usize)?.max(1),
        cache_entries: args.get_or("cache-entries", 256usize)?,
        timeout: std::time::Duration::from_millis(args.get_or("timeout-ms", 30_000u64)?.max(1)),
        queue_depth: args.get_or("queue-depth", 0usize)?,
        panic_marker: None,
        peers: args.raw("peers").map(comma_list).unwrap_or_default(),
        gossip_interval: std::time::Duration::from_millis(args.get_or("gossip-ms", 500u64)?.max(1)),
        gossip_entries: args.get_or("gossip-entries", 8usize)?,
        flight_dump: args.raw("flight-dump").map(str::to_string),
        journal: args.raw("journal").map(str::to_string),
        cache_bytes: args.get_or("cache-bytes", 0usize)?,
        shed_target: std::time::Duration::from_millis(args.get_or("shed-target-ms", 0u64)?),
        shed_window: std::time::Duration::from_millis(
            args.get_or("shed-window-ms", 100u64)?.max(1),
        ),
    };
    madpipe_serve::install_signal_handlers();
    let server = madpipe_serve::Server::start(cfg).map_err(|e| format!("bind: {e}"))?;
    // The smoke harness waits for this exact line before firing load.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    while !server.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("draining...");
    server.shutdown();
    server.join();
    eprintln!("drained, exiting");
    Ok(())
}

fn cmd_route(args: &Args) -> Result<(), String> {
    use std::io::Write as _;
    let backends = args
        .raw("backends")
        .map(comma_list)
        .filter(|b| !b.is_empty())
        .ok_or("route needs --backends HOST:PORT[,HOST:PORT..]")?;
    let n = backends.len();
    let cfg = madpipe_serve::RouterConfig {
        addr: args.raw("addr").unwrap_or("127.0.0.1:4830").to_string(),
        backends,
        vnodes: args.get_or("vnodes", 64usize)?.max(1),
        timeout: std::time::Duration::from_millis(args.get_or("timeout-ms", 60_000u64)?.max(1)),
        probe_timeout: std::time::Duration::from_millis(
            args.get_or("probe-timeout-ms", 2_000u64)?.max(1),
        ),
        breaker_threshold: args.get_or("breaker-threshold", 3u32)?.max(1),
        breaker_open: std::time::Duration::from_millis(args.get_or("breaker-open-ms", 500u64)?),
        flight_dump: args.raw("flight-dump").map(str::to_string),
    };
    madpipe_serve::install_signal_handlers();
    let router = madpipe_serve::Router::start(cfg).map_err(|e| format!("bind: {e}"))?;
    // The cluster smoke harness waits for this exact line.
    println!("routing on {} -> {n} backends", router.local_addr());
    std::io::stdout().flush().ok();
    while !router.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("draining...");
    router.shutdown();
    router.join();
    eprintln!("drained, exiting");
    Ok(())
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let cfg = madpipe_bench::loadgen::LoadgenConfig {
        addrs: comma_list(args.raw("addr").unwrap_or("127.0.0.1:4835")),
        connections: args.get_or("connections", 4usize)?.max(1),
        requests_per_conn: args.get_or("requests", 16usize)?.max(1),
        pipeline_depth: args.get_or("pipeline", 1usize)?.max(1),
        instances: args.get_or("instances", 4usize)?.max(1),
        seed: args.get_or("seed", 42u64)?,
        timeout: std::time::Duration::from_millis(args.get_or("timeout-ms", 60_000u64)?.max(1)),
        max_retries: args.get_or("max-retries", 3usize)?,
        rate: args.get_or("rate", 0.0f64)?.max(0.0),
        trace: args.has("trace"),
    };
    let report = madpipe_bench::loadgen::run(&cfg)?;
    println!("{report}");
    if let Some(path) = args.raw("floor") {
        let baseline = madpipe_bench::loadgen::ServeSpeedBaseline::load(path)?;
        println!("{}", baseline.check(&report)?);
    }
    let metrics = madpipe_bench::loadgen::fetch_metrics(&cfg.addrs[0], cfg.timeout)?;
    let serve_lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("madpipe_serve_") && !l.starts_with('#'))
        .collect();
    println!("server serve.* counters:");
    for line in &serve_lines {
        println!("  {line}");
    }
    if args.has("expect-hits") {
        let counter = |name: &str| -> u64 {
            serve_lines
                .iter()
                .find(|l| {
                    l.strip_prefix(name)
                        .is_some_and(|rest| rest.starts_with(' '))
                })
                .and_then(|l| l.split(' ').nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        let hits = counter("madpipe_serve_cache_hits");
        let misses = counter("madpipe_serve_cache_misses");
        let failed = report.errors + report.shed + report.timeouts;
        if failed > 0 {
            return Err(format!(
                "{failed} of {} requests failed ({} error, {} shed, {} timeout)",
                report.total, report.errors, report.shed, report.timeouts
            ));
        }
        if hits == 0 || misses == 0 {
            return Err(format!(
                "expected both cache hits and misses, server reports hits={hits} misses={misses}"
            ));
        }
        println!("expect-hits: ok (hits={hits}, misses={misses})");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_cells_never_render_a_raw_nan() {
        // An idle cluster's all-zero histogram yields a NaN quantile;
        // the dashboard must print `-`, not `NaN ms`.
        let empty: Vec<(f64, u64)> = vec![];
        let idle = latency_cell(1e3 * madpipe_obs::quantile_from_buckets(&empty, 0.99));
        assert_eq!(idle, "-");
        assert_eq!(latency_cell(f64::NAN), "-");
        assert_eq!(latency_cell(f64::INFINITY), "-");
        assert_eq!(latency_cell(1.234), "1.23 ms");
    }

    #[test]
    fn policy_flags_parse_into_the_planner_config() {
        let argv: Vec<String> = [
            "plan",
            "resnet50",
            "--recompute",
            "auto",
            "--weights",
            "2bw",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = parse(&argv, &[]).unwrap();
        let spec = policy_spec(&args).unwrap();
        assert_eq!(spec.recompute, RecomputeMode::Auto);
        assert_eq!(spec.weights, WeightPolicy::TwoBw);

        // Defaults reproduce the paper's model exactly.
        let bare = parse(&["plan".to_string()], &[]).unwrap();
        assert!(policy_spec(&bare).unwrap().is_default());

        // Bad values are reported, not silently defaulted.
        let bad: Vec<String> = ["plan", "--recompute", "sometimes"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(policy_spec(&parse(&bad, &[]).unwrap()).is_err());
    }
}
