//! The cluster router: consistent hashing over daemon backends, keyed
//! on the canonical instance string.
//!
//! The router speaks the same NDJSON protocol as the daemons. `plan` and
//! `replan` lines are forwarded *verbatim* to the backend that owns the
//! request's canonical key on the hash ring — the daemon re-parses and
//! answers, so a routed response is byte-identical to a direct one. (The
//! one exception is a line carrying a distributed `trace` field: the
//! router rewrites its `parent` to the freshly minted `router.forward`
//! span before forwarding, so the daemon's request span hangs off the
//! router hop in the merged cluster trace — see
//! [`crate::protocol::inject_context`].) The
//! same instance always lands on the same daemon (maximizing warm
//! [`ProbeSession`](madpipe_core::ProbeSession) and cache reuse), and
//! adding or removing a daemon only remaps the keys the ring assigned to
//! it — the consistent-hashing property, tested on [`Ring`] directly.
//!
//! Failover: every backend sits behind a circuit [`Breaker`]
//! (closed → open → half-open). An exchange failure counts against the
//! backend; at the threshold the breaker trips open and requests skip
//! the backend outright — no dial timeout burned on a corpse — until
//! the open window lapses and a single half-open probe is admitted,
//! whose success closes the breaker (counters `router.backend_errors`,
//! `router.failover`, `router.breaker.*`). Failover retries themselves
//! are metered by a token-bucket retry budget (a deposit per request,
//! a withdrawal per retry, so retries stay a bounded fraction of
//! traffic and a dead cluster cannot trigger a retry storm). Only when
//! every candidate is down, shed, or out of budget does the client see
//! an `unavailable` error.
//!
//! Rollups: `health` fans out to every backend and reports per-daemon
//! status plus an `alive` count; `metrics` sums each daemon's plain
//! Prometheus samples (via [`madpipe_obs::validate::prometheus_samples`])
//! into one cluster-wide dump, appends `madpipe_cluster_*` gauges and
//! the router's own counters. `ping`/`shutdown` are local to the router;
//! `gossip` is rejected — peers gossip daemon-to-daemon.

use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use madpipe_json::Value;
use madpipe_obs::Registry;

use crate::protocol::{
    error_response, inject_context, ok_response, parse_line, Request, ServeError, TraceContext,
};
use crate::server::{lock_unpoisoned, MAX_LINE_BYTES};

/// Poll cadence of the router's accept loop and drain checks.
const POLL: Duration = Duration::from_millis(50);

/// Cap on one backend response line (a rendered plan is well under
/// [`MAX_LINE_BYTES`]; the backend enforces the same bound inbound).
const MAX_RESPONSE_BYTES: usize = 4 << 20;

const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(200);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`:0` picks a free port).
    pub addr: String,
    /// Daemon backends, e.g. `["127.0.0.1:4861", …]`. Order is identity:
    /// the ring hashes `addr#vnode` strings.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Per-exchange dial + I/O budget against one backend.
    pub timeout: Duration,
    /// Dial + I/O budget for `health`/`metrics` rollup probes. Much
    /// shorter than `timeout`: a rollup should detect a dead daemon in
    /// probe time, not hang a cluster health check for a full planning
    /// budget.
    pub probe_timeout: Duration,
    /// Consecutive exchange failures that trip a backend's circuit
    /// breaker open.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before it admits a single
    /// half-open probe.
    pub breaker_open: Duration,
    /// Where `join()` dumps the flight-recorder ring (JSONL). `None`
    /// skips the dump; the ring records regardless.
    pub flight_dump: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4830".into(),
            backends: Vec::new(),
            vnodes: 64,
            timeout: Duration::from_secs(60),
            probe_timeout: Duration::from_secs(2),
            breaker_threshold: 3,
            breaker_open: Duration::from_millis(500),
            flight_dump: None,
        }
    }
}

/// Retry-budget token bucket, accounted in integer *tenths* of a token
/// (exact, no float drift): each forwarded request deposits one tenth,
/// each failover retry withdraws ten. Retries therefore converge to at
/// most ~10% of offered traffic, with a burst allowance of
/// [`RETRY_CAP`] whole tokens — enough to ride out a single backend
/// dying, not enough to amplify a dead cluster into a retry storm.
const RETRY_CAP: u64 = 100;
const TENTHS_PER_RETRY: u64 = 10;

struct RetryBudget {
    tenths: Mutex<u64>,
}

impl RetryBudget {
    /// The bucket starts full so cold-start failovers are never starved.
    fn new() -> RetryBudget {
        RetryBudget {
            tenths: Mutex::new(RETRY_CAP * TENTHS_PER_RETRY),
        }
    }

    fn deposit(&self) {
        let mut tenths = lock_unpoisoned(&self.tenths);
        *tenths = (*tenths + 1).min(RETRY_CAP * TENTHS_PER_RETRY);
    }

    /// Take one retry token; `false` means the budget is exhausted and
    /// the caller must stop failing over.
    fn withdraw(&self) -> bool {
        let mut tenths = lock_unpoisoned(&self.tenths);
        if *tenths >= TENTHS_PER_RETRY {
            *tenths -= TENTHS_PER_RETRY;
            true
        } else {
            false
        }
    }
}

/// Per-backend circuit breaker: closed → open → half-open → closed.
///
/// Closed counts *consecutive* failures; at the threshold the breaker
/// opens for `open_for` and requests shed the backend instantly instead
/// of burning a dial timeout on it. When the window lapses, the next
/// caller is admitted as the single half-open canary: its success
/// closes the breaker, its failure re-opens it, and everyone else keeps
/// shedding until the canary reports.
struct Breaker {
    threshold: u32,
    open_for: Duration,
    state: Mutex<BreakerState>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen { since: Instant },
}

/// What [`Breaker::admit`] tells a request it may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admit {
    /// Breaker closed: exchange normally.
    Yes,
    /// Breaker half-open and this caller drew the single canary slot.
    Probe,
    /// Breaker open (or another canary is in flight): skip the backend.
    No,
}

impl Breaker {
    fn new(threshold: u32, open_for: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            open_for,
            state: Mutex::new(BreakerState::Closed { failures: 0 }),
        }
    }

    fn admit(&self) -> Admit {
        let mut st = lock_unpoisoned(&self.state);
        match *st {
            BreakerState::Closed { .. } => Admit::Yes,
            BreakerState::Open { until } => {
                if Instant::now() >= until {
                    *st = BreakerState::HalfOpen {
                        since: Instant::now(),
                    };
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
            BreakerState::HalfOpen { since } => {
                // A canary that never reported (its thread died, its
                // dial hung) must not wedge the breaker half-open
                // forever: after a full open window the next caller
                // becomes the new canary.
                if since.elapsed() > self.open_for {
                    *st = BreakerState::HalfOpen {
                        since: Instant::now(),
                    };
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
        }
    }

    fn on_success(&self) {
        *lock_unpoisoned(&self.state) = BreakerState::Closed { failures: 0 };
    }

    /// Record a failed exchange; `true` when this failure tripped the
    /// breaker open (closed at threshold, or a failed canary).
    fn on_failure(&self) -> bool {
        let mut st = lock_unpoisoned(&self.state);
        match *st {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    *st = BreakerState::Open {
                        until: Instant::now() + self.open_for,
                    };
                    true
                } else {
                    *st = BreakerState::Closed { failures };
                    false
                }
            }
            BreakerState::HalfOpen { .. } => {
                *st = BreakerState::Open {
                    until: Instant::now() + self.open_for,
                };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Stable state name for rollups and `madpipe top`.
    fn state_name(&self) -> &'static str {
        match *lock_unpoisoned(&self.state) {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half_open",
        }
    }
}

/// 64-bit FNV-1a — the same cheap, dependency-free hash the plan cache
/// shards with. Ring placement only needs uniformity, not cryptography.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring: each backend contributes `vnodes` points,
/// a key is owned by the first point clockwise from its hash.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(hash point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    pub fn new(backends: &[String], vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, usize)> = backends
            .iter()
            .enumerate()
            .flat_map(|(i, b)| (0..vnodes).map(move |v| (fnv1a(format!("{b}#{v}").as_bytes()), i)))
            .collect();
        points.sort_unstable();
        Ring { points }
    }

    /// Every backend index, in ring order starting from `key`'s owner.
    /// The first entry is the primary; the rest are the failover chain.
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let h = fnv1a(key.as_bytes());
        let start = self.points.partition_point(|(p, _)| *p < h);
        let mut out = Vec::new();
        for k in 0..self.points.len() {
            let idx = self.points[(start + k) % self.points.len()].1;
            if !out.contains(&idx) {
                out.push(idx);
            }
        }
        out
    }
}

struct RouterCtx {
    draining: AtomicBool,
    registry: Registry,
    backends: Vec<String>,
    ring: Ring,
    /// Per-backend circuit breaker.
    breakers: Vec<Breaker>,
    retry_budget: RetryBudget,
    timeout: Duration,
    probe_timeout: Duration,
    flight_dump: Option<String>,
}

impl RouterCtx {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || crate::server::term_requested()
    }

    /// Record a successful/failed exchange or probe against a backend.
    fn mark_alive(&self, idx: usize) {
        self.breakers[idx].on_success();
    }

    fn mark_dead(&self, idx: usize) {
        if self.breakers[idx].on_failure() {
            self.registry.inc("router.breaker.opened");
        }
    }
}

/// A running router. Same lifecycle shape as [`crate::Server`]:
/// `shutdown()` then `join()` to drain. Draining the router does *not*
/// drain the daemons behind it.
pub struct Router {
    local_addr: SocketAddr,
    ctx: Arc<RouterCtx>,
    acceptor: Option<JoinHandle<()>>,
}

impl Router {
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.backends.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(RouterCtx {
            draining: AtomicBool::new(false),
            registry: Registry::new(),
            ring: Ring::new(&cfg.backends, cfg.vnodes),
            breakers: cfg
                .backends
                .iter()
                .map(|_| Breaker::new(cfg.breaker_threshold, cfg.breaker_open))
                .collect(),
            retry_budget: RetryBudget::new(),
            backends: cfg.backends,
            timeout: cfg.timeout,
            probe_timeout: cfg.probe_timeout,
            flight_dump: cfg.flight_dump,
        });
        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("route-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &ctx))
                .expect("spawn router acceptor")
        };
        Ok(Router {
            local_addr,
            ctx,
            acceptor: Some(acceptor),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router's own metrics registry (counters named `router.*`).
    pub fn registry(&self) -> &Registry {
        &self.ctx.registry
    }

    pub fn shutdown(&self) {
        self.ctx.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.ctx.draining()
    }

    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(path) = &self.ctx.flight_dump {
            let _ = madpipe_obs::flight::write_dump(path);
        }
    }
}

/// Accept with the same transient-error backoff as the daemon reactor.
fn acceptor_loop(listener: &TcpListener, ctx: &Arc<RouterCtx>) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = Duration::ZERO;
    while !ctx.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = Duration::ZERO;
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                ctx.registry.inc("router.connections");
                let ctx = Arc::clone(ctx);
                let handle = std::thread::Builder::new()
                    .name("route-conn".into())
                    .spawn(move || connection_loop(&stream, &ctx))
                    .expect("spawn router connection");
                handles.push(handle);
                handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                backoff = Duration::ZERO;
                std::thread::sleep(POLL);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                ctx.registry.inc("router.accept.errors");
                backoff = if backoff.is_zero() {
                    ACCEPT_BACKOFF_MIN
                } else {
                    (backoff * 2).min(ACCEPT_BACKOFF_MAX)
                };
                std::thread::sleep(backoff);
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

fn connection_loop(stream: &TcpStream, ctx: &Arc<RouterCtx>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // Persistent backend connections for this client connection: the
    // common case (one client hammering one hot instance) reuses one
    // upstream socket end to end.
    let mut backends: HashMap<usize, TcpStream> = HashMap::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut discarding = false;
    loop {
        match (&mut &*stream).read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                let mut data = &chunk[..n];
                if discarding {
                    match data.iter().position(|b| *b == b'\n') {
                        Some(pos) => {
                            discarding = false;
                            data = &data[pos + 1..];
                        }
                        None => continue,
                    }
                }
                buf.extend_from_slice(data);
                while let Some(pos) = buf.iter().position(|b| *b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..pos.min(line.len())]).into_owned();
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let response = handle_line(trimmed, ctx, &mut backends);
                    if write_line(stream, &response).is_err() {
                        return;
                    }
                }
                if buf.len() > MAX_LINE_BYTES {
                    ctx.registry.inc("router.errors.oversized");
                    let err = ServeError::malformed(format!(
                        "request line exceeds {MAX_LINE_BYTES} bytes"
                    ));
                    if write_line(stream, &error_response(&err)).is_err() {
                        return;
                    }
                    buf.clear();
                    buf.shrink_to_fit();
                    discarding = true;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if ctx.draining() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_line(stream: &TcpStream, line: &str) -> std::io::Result<()> {
    let mut w = stream;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn handle_line(
    line: &str,
    ctx: &Arc<RouterCtx>,
    backends: &mut HashMap<usize, TcpStream>,
) -> String {
    ctx.registry.inc("router.requests");
    let (req, trace) = match parse_line(line) {
        Ok(parsed) => parsed,
        Err(err) => {
            ctx.registry.inc("router.errors.malformed");
            return error_response(&err);
        }
    };
    match req {
        Request::Ping => ok_response("pong", Value::Bool(true)),
        Request::Shutdown => {
            ctx.draining.store(true, Ordering::SeqCst);
            ok_response("draining", Value::Bool(true))
        }
        Request::Health => health_rollup(ctx),
        Request::Metrics => metrics_rollup(ctx),
        Request::Gossip(_) => error_response(&ServeError::invalid(
            "gossip is daemon-to-daemon; the router does not hold a plan cache",
        )),
        Request::Plan(p) => traced_forward(line, &p.canonical, trace, ctx, backends),
        Request::Replan(r) => traced_forward(line, &r.baseline.canonical, trace, ctx, backends),
    }
}

/// Forward a plan/replan line, stamping the router hop into the flight
/// recorder. An untraced line goes through byte-for-byte; a traced one
/// gets its `parent` rewritten to a fresh `router.forward` span id so
/// the daemon's request span nests under this hop in the merged trace.
fn traced_forward(
    line: &str,
    key: &str,
    trace: Option<TraceContext>,
    ctx: &Arc<RouterCtx>,
    backends: &mut HashMap<usize, TcpStream>,
) -> String {
    let Some(tc) = trace else {
        return forward(line, key, ctx, backends);
    };
    let span = madpipe_obs::fresh_id();
    let injected = inject_context(line, tc.trace, span);
    let relay = injected.as_deref().unwrap_or(line);
    let started = Instant::now();
    let started_us = madpipe_obs::now_unix_us();
    let response = forward(relay, key, ctx, backends);
    madpipe_obs::flight::record_span(
        "router.forward",
        started_us,
        started.elapsed().as_secs_f64() * 1e6,
        tc.trace,
        span,
        tc.parent,
    );
    response
}

/// Relay the original line to the key's owner, failing over along the
/// ring. The line goes verbatim, so the response is byte-identical to
/// what the daemon would have sent a direct client. Backends with an
/// open breaker are skipped outright; failover retries past the first
/// attempt each spend a retry-budget token.
fn forward(
    line: &str,
    key: &str,
    ctx: &Arc<RouterCtx>,
    backends: &mut HashMap<usize, TcpStream>,
) -> String {
    ctx.retry_budget.deposit();
    let candidates = ctx.ring.candidates(key);
    let primary = candidates.first().copied();
    let mut attempted = 0usize;
    for idx in candidates {
        match ctx.breakers[idx].admit() {
            Admit::No => {
                ctx.registry.inc("router.breaker.shed");
                continue;
            }
            Admit::Probe => ctx.registry.inc("router.breaker.probes"),
            Admit::Yes => {}
        }
        if attempted >= 1 && !ctx.retry_budget.withdraw() {
            ctx.registry.inc("router.retry_budget.exhausted");
            break;
        }
        attempted += 1;
        match exchange(backends, idx, &ctx.backends[idx], line, ctx.timeout) {
            Ok(response) => {
                ctx.mark_alive(idx);
                ctx.registry.inc("router.forwarded");
                if Some(idx) != primary {
                    ctx.registry.inc("router.failover");
                }
                return response;
            }
            Err(_) => {
                backends.remove(&idx);
                ctx.mark_dead(idx);
                ctx.registry.inc("router.backend_errors");
            }
        }
    }
    ctx.registry.inc("router.unavailable");
    error_response(&ServeError {
        kind: "unavailable",
        message: "no backend reachable".into(),
    })
}

/// One line out, one line back on a persistent backend connection.
fn exchange(
    backends: &mut HashMap<usize, TcpStream>,
    idx: usize,
    addr: &str,
    line: &str,
    timeout: Duration,
) -> std::io::Result<String> {
    if let std::collections::hash_map::Entry::Vacant(e) = backends.entry(idx) {
        e.insert(dial(addr, timeout)?);
    }
    let stream = backends.get_mut(&idx).expect("just inserted");
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    read_response_line(stream)
}

fn dial(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("backend `{addr}` resolves to nothing"),
        )
    })?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout.min(Duration::from_secs(2)))?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn read_response_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut out: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(String::from_utf8_lossy(&out).into_owned());
                }
                out.push(byte[0]);
                if out.len() > MAX_RESPONSE_BYTES {
                    return Err(ErrorKind::InvalidData.into());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Round-trip one command line against a backend on a fresh connection
/// (rollups are rare; freshness beats plumbing the per-client pools).
fn probe(addr: &str, line: &str, timeout: Duration) -> std::io::Result<Value> {
    let mut stream = dial(addr, timeout)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let response = read_response_line(&mut stream)?;
    Value::parse(&response)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("bad response: {e}")))
}

/// Cluster `health`: per-daemon status (with its breaker state) plus
/// the alive count. Probes run on the short `probe_timeout` and feed
/// the breakers, so rollups double as failure detection *and* as the
/// path by which a recovered daemon's breaker closes again.
fn health_rollup(ctx: &Arc<RouterCtx>) -> String {
    let mut daemons = Vec::new();
    let mut alive = 0u64;
    for (idx, addr) in ctx.backends.iter().enumerate() {
        let mut fields = vec![("addr".to_string(), Value::Str(addr.clone()))];
        match probe(addr, r#"{"cmd":"health"}"#, ctx.probe_timeout) {
            Ok(v)
                if v.field("ok")
                    .map(|ok| ok == &Value::Bool(true))
                    .unwrap_or(false) =>
            {
                alive += 1;
                ctx.mark_alive(idx);
                fields.push(("ok".into(), Value::Bool(true)));
                if let Ok(h) = v.field("health") {
                    fields.push(("health".into(), h.clone()));
                }
            }
            _ => {
                ctx.mark_dead(idx);
                fields.push(("ok".into(), Value::Bool(false)));
            }
        }
        fields.push((
            "breaker".into(),
            Value::Str(ctx.breakers[idx].state_name().into()),
        ));
        daemons.push(Value::Object(fields));
    }
    ok_response(
        "health",
        Value::Object(vec![
            ("cluster".into(), Value::Bool(true)),
            ("alive".into(), Value::UInt(alive)),
            ("configured".into(), Value::UInt(ctx.backends.len() as u64)),
            ("draining".into(), Value::Bool(ctx.draining())),
            ("daemons".into(), Value::Array(daemons)),
        ]),
    )
}

/// Cluster `metrics`: the sum of every daemon's plain Prometheus
/// samples, plus `madpipe_cluster_*` gauges and the router's own
/// counters. Summing plain samples is the right aggregation for
/// counters and histogram `_sum`/`_count` lines alike. Histogram
/// `_bucket` series sum too — but per bucket, after differencing each
/// daemon's cumulative counts (see
/// [`madpipe_obs::validate::histogram_buckets`]) — and are re-rendered
/// cumulative, so `madpipe top` can reconstruct cluster-wide quantiles.
/// Per-daemon `{quantile=…}` gauges are deliberately dropped: quantiles
/// do not sum.
fn metrics_rollup(ctx: &Arc<RouterCtx>) -> String {
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    // Histogram name → bucket upper-bound bits → summed per-bucket count.
    // Keying on `to_bits()` keeps exact bound identity while staying
    // ordered like the (positive, finite) bounds themselves.
    let mut buckets: BTreeMap<String, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut reporting = 0u64;
    for (idx, addr) in ctx.backends.iter().enumerate() {
        let Ok(v) = probe(addr, r#"{"cmd":"metrics"}"#, ctx.probe_timeout) else {
            ctx.mark_dead(idx);
            continue;
        };
        let Ok(text) = v.field("metrics").and_then(Value::as_str) else {
            continue;
        };
        let Ok(samples) = madpipe_obs::validate::prometheus_samples(text) else {
            continue;
        };
        reporting += 1;
        ctx.mark_alive(idx);
        for (name, value) in samples {
            *sums.entry(name).or_insert(0.0) += value;
        }
        if let Ok(histograms) = madpipe_obs::validate::histogram_buckets(text) {
            for (name, series) in histograms {
                let merged = buckets.entry(name).or_default();
                for (le, n) in series {
                    *merged.entry(le.to_bits()).or_insert(0) += n;
                }
            }
        }
    }
    let mut text = String::new();
    for (name, value) in &sums {
        text.push_str(&format!("{name} {value}\n"));
    }
    for (name, series) in &buckets {
        let mut cumulative = 0u64;
        for (bits, n) in series {
            cumulative += n;
            let le = f64::from_bits(*bits);
            text.push_str(&format!("{name}_bucket{{le=\"{le:e}\"}} {cumulative}\n"));
        }
        text.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
    }
    text.push_str(&format!("madpipe_cluster_daemons_reporting {reporting}\n"));
    text.push_str(&format!(
        "madpipe_cluster_daemons_configured {}\n",
        ctx.backends.len()
    ));
    text.push_str(&ctx.registry.snapshot().to_prometheus());
    ok_response("metrics", Value::Str(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:4835")).collect()
    }

    #[test]
    fn ring_spreads_keys_and_lists_every_backend() {
        let ring = Ring::new(&backends(3), 64);
        let mut owned = [0usize; 3];
        for k in 0..3000 {
            let cands = ring.candidates(&format!("canonical-instance-{k}"));
            assert_eq!(cands.len(), 3);
            let mut sorted = cands.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2]);
            owned[cands[0]] += 1;
        }
        for (i, n) in owned.iter().enumerate() {
            assert!(
                *n > 300,
                "backend {i} owns {n}/3000 keys — vnode spread is broken: {owned:?}"
            );
        }
    }

    #[test]
    fn ring_assignment_is_deterministic_and_consistent() {
        let three = Ring::new(&backends(3), 64);
        let again = Ring::new(&backends(3), 64);
        // Removing one backend only remaps the keys it owned.
        let two = Ring::new(&backends(2), 64);
        let mut moved = 0usize;
        let total = 2000;
        for k in 0..total {
            let key = format!("canonical-instance-{k}");
            let owner = three.candidates(&key)[0];
            assert_eq!(owner, again.candidates(&key)[0], "ring must be stable");
            if owner < 2 {
                assert_eq!(
                    two.candidates(&key)[0],
                    owner,
                    "key {key} moved although its owner survived"
                );
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "backend 2 owned nothing out of {total} keys");
    }

    #[test]
    fn empty_and_single_rings_behave() {
        assert!(Ring::new(&[], 64).candidates("k").is_empty());
        let one = Ring::new(&backends(1), 8);
        assert_eq!(one.candidates("anything"), vec![0]);
    }

    #[test]
    fn breaker_trips_at_threshold_then_recovers_through_a_single_probe() {
        let b = Breaker::new(3, Duration::from_millis(20));
        assert_eq!(b.state_name(), "closed");

        // Two failures stay closed; the third trips the breaker.
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert_eq!(b.admit(), Admit::Yes, "still closed below threshold");
        assert!(b.on_failure(), "threshold failure must report the trip");
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.admit(), Admit::No, "open breakers shed instantly");

        // After the open window: exactly one canary is admitted, the
        // rest keep shedding until it reports.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), Admit::Probe);
        assert_eq!(b.state_name(), "half_open");
        assert_eq!(b.admit(), Admit::No, "only one canary at a time");

        // A failed canary re-opens; a successful one closes.
        assert!(b.on_failure());
        assert_eq!(b.state_name(), "open");
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), Admit::Probe);
        b.on_success();
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.admit(), Admit::Yes);

        // Success also resets the consecutive-failure count.
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        b.on_success();
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn a_wedged_canary_is_replaced_after_a_full_open_window() {
        let b = Breaker::new(1, Duration::from_millis(10));
        assert!(b.on_failure());
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admit::Probe);
        // The canary never reports. After another open window the slot
        // is re-issued rather than wedging half-open forever.
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admit::Probe);
    }

    #[test]
    fn retry_budget_meters_retries_against_traffic() {
        let budget = RetryBudget::new();
        // The bucket starts full: drain it.
        let mut drained = 0;
        while budget.withdraw() {
            drained += 1;
            assert!(drained <= RETRY_CAP as usize, "bucket must be bounded");
        }
        assert_eq!(drained, RETRY_CAP as usize);
        assert!(!budget.withdraw(), "empty bucket refuses retries");

        // Ten deposits (ten forwarded requests) buy back one retry.
        for _ in 0..9 {
            budget.deposit();
        }
        assert!(!budget.withdraw(), "0.9 tokens is not a retry");
        budget.deposit();
        assert!(budget.withdraw());
        assert!(!budget.withdraw());

        // The cap holds no matter how much traffic flows.
        for _ in 0..10_000 {
            budget.deposit();
        }
        let mut again = 0;
        while budget.withdraw() {
            again += 1;
        }
        assert_eq!(again, RETRY_CAP as usize);
    }
}
